package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions in 100 draws from different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(8)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(9)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v", v)
		}
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := New(10)
	seen := make(map[int]int)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v]++
	}
	for k := 0; k < 7; k++ {
		if seen[k] < 1000 {
			t.Errorf("value %d appeared only %d/10000 times", k, seen[k])
		}
	}
}

func TestIntnOne(t *testing.T) {
	r := New(11)
	for i := 0; i < 10; i++ {
		if r.Intn(1) != 0 {
			t.Fatal("Intn(1) must be 0")
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(12)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) must panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
}

func TestNormal(t *testing.T) {
	r := New(14)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / float64(n); math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal(10,2) mean = %v", mean)
	}
}

func TestBool(t *testing.T) {
	r := New(15)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", p)
	}
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
}

func TestFillers(t *testing.T) {
	r := New(16)
	u := make([]float64, 100)
	r.FillUniform(u, 2, 3)
	for _, v := range u {
		if v < 2 || v >= 3 {
			t.Fatalf("FillUniform value %v", v)
		}
	}
	nrm := make([]float64, 100)
	r.FillNormal(nrm, 0, 1)
	allSame := true
	for _, v := range nrm[1:] {
		if v != nrm[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("FillNormal produced constant values")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(18)
	child := parent.Split()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 50; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and split child", same)
	}
}

// Property: Intn is always within bounds for arbitrary seeds and sizes.
func TestPropertyIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%100) + 1
		r := New(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(size)
			if v < 0 || v >= size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
