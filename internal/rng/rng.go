// Package rng provides a deterministic, splittable pseudo-random number
// generator for the experiments. Every figure in the paper depends heavily
// on random initial weights (the authors even reset unpromising seeds), so
// reproducibility demands identical random streams across runs and across
// goroutines: math/rand's global source is shared and lock-contended,
// whereas each rng.RNG here is an independent xoshiro256** stream derived
// from a seed via SplitMix64.
package rng

import "math"

// RNG is a xoshiro256** generator. Not safe for concurrent use; derive one
// per goroutine with Split.
type RNG struct {
	s [4]uint64
	// cached second normal deviate for Box-Muller
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from seed via SplitMix64 so that nearby
// seeds yield decorrelated states.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		r.s[i] = z
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split returns a new generator whose stream is independent of r's
// continued use: it is seeded from r's next output.
func (r *RNG) Split() *RNG { return New(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aHi*bLo)>>32
	return
}

// Norm returns a standard normal deviate via Box-Muller, caching the pair.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u1 float64
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.gauss = mag * math.Sin(2*math.Pi*u2)
	r.hasGauss = true
	return mag * math.Cos(2*math.Pi*u2)
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 { return mean + std*r.Norm() }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// FillUniform fills dst with uniform values in [lo, hi).
func (r *RNG) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}

// FillNormal fills dst with normal deviates.
func (r *RNG) FillNormal(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, std)
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
