// Package ac implements the paper's stated future work (§5): applying the
// OS-ELM on-device learning approach to an actor-critic framework.
//
// The design keeps the paper's constraints — no backpropagation, bounded
// memory, rank-1 sequential updates — and composes two OS-ELM networks:
//
//   - The critic is an OS-ELM state-value network V(s) trained toward the
//     clipped one-step TD target r + γ·V(s'), exactly the ReOS-ELM
//     machinery of the Q-network (L2-regularized initial training,
//     spectral-normalized α).
//   - The actor is a preference table over ELM random features: h(s)·W
//     gives per-action preferences turned into a softmax policy; W is
//     updated by the classic one-step actor-critic rule
//     W += lr · δ · hᵀ·(onehot(a) − π(s)) with the TD error δ from the
//     critic. The feature map is frozen and spectrally normalized, so this
//     is a linear-in-features policy-gradient step — no backprop through
//     hidden layers, preserving the on-device budget.
package ac

import (
	"fmt"
	"math"

	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// Config holds the actor-critic hyperparameters.
type Config struct {
	// ObservationSize and ActionCount describe the environment.
	ObservationSize, ActionCount int
	// Hidden is the width of both the critic's and the actor's feature maps.
	Hidden int
	// Gamma is the discount rate.
	Gamma float64
	// Delta is the critic's L2 regularization (ReOS-ELM initial training).
	Delta float64
	// ActorLR is the policy-gradient step size.
	ActorLR float64
	// ClipLow and ClipHigh bound the critic targets, as in the Q-network.
	ClipLow, ClipHigh float64
	// Epsilon2 is the random-update probability for the critic, matching
	// the Q-network's buffer-free update scheme.
	Epsilon2 float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig mirrors the Q-network's paper-aligned settings.
func DefaultConfig(obsSize, actions, hidden int) Config {
	return Config{
		ObservationSize: obsSize,
		ActionCount:     actions,
		Hidden:          hidden,
		Gamma:           0.99,
		Delta:           0.5,
		ActorLR:         0.05,
		ClipLow:         -1,
		ClipHigh:        1,
		Epsilon2:        0.5,
		Seed:            1,
	}
}

// Agent is the OS-ELM actor-critic.
type Agent struct {
	cfg Config
	rng *rng.RNG

	critic *oselm.Model
	// actorFeatures is the frozen spectrally-normalized feature ELM; only
	// its hidden map is used.
	actorFeatures *elm.Model
	// actorW is the Hidden×Actions preference matrix.
	actorW *mat.Dense

	buffer   *replay.InitStore
	counters *timing.Counters
	dims     timing.OSELMDims
}

// New builds the agent.
func New(cfg Config) (*Agent, error) {
	if cfg.ObservationSize <= 0 || cfg.ActionCount <= 0 || cfg.Hidden <= 0 {
		return nil, fmt.Errorf("ac: invalid dimensions obs=%d actions=%d hidden=%d",
			cfg.ObservationSize, cfg.ActionCount, cfg.Hidden)
	}
	if cfg.ActorLR <= 0 {
		return nil, fmt.Errorf("ac: ActorLR must be positive")
	}
	a := &Agent{
		cfg:      cfg,
		rng:      rng.New(cfg.Seed),
		buffer:   replay.NewInitStore(cfg.Hidden),
		counters: timing.NewCounters(),
		dims:     timing.OSELMDims{In: cfg.ObservationSize, Hidden: cfg.Hidden, Out: 1},
	}
	a.initModels()
	return a, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Agent {
	a, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

func (a *Agent) initModels() {
	opts := elm.Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true}
	criticBase := elm.NewModel(a.cfg.ObservationSize, a.cfg.Hidden, 1,
		activation.ReLU, a.rng, opts)
	a.critic = oselm.New(criticBase, a.cfg.Delta)
	a.actorFeatures = elm.NewModel(a.cfg.ObservationSize, a.cfg.Hidden,
		a.cfg.ActionCount, activation.ReLU, a.rng, opts)
	a.actorW = mat.Zeros(a.cfg.Hidden, a.cfg.ActionCount)
	a.buffer.Clear()
}

// Name identifies the design.
func (a *Agent) Name() string { return "OS-ELM-ActorCritic" }

// Counters exposes the accumulated timing counters.
func (a *Agent) Counters() *timing.Counters { return a.counters }

// Policy returns the softmax action distribution at state s.
func (a *Agent) Policy(s []float64) []float64 {
	h := a.actorFeatures.HiddenOne(s)
	prefs := mat.VecMul(h, a.actorW)
	return softmax(prefs)
}

func softmax(x []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range x {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(x))
	var sum float64
	for i, v := range x {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SelectAction samples from the softmax policy — exploration is intrinsic,
// so no ε schedule is needed.
func (a *Agent) SelectAction(s []float64) int {
	p := a.Policy(s)
	a.counters.Add(timing.PhasePredictSeq, a.dims.PredictFlops())
	u := a.rng.Float64()
	acc := 0.0
	for i, pv := range p {
		acc += pv
		if u < acc {
			return i
		}
	}
	return len(p) - 1
}

// GreedyAction returns the mode of the policy.
func (a *Agent) GreedyAction(s []float64) int {
	p := a.Policy(s)
	best, arg := math.Inf(-1), 0
	for i, v := range p {
		if v > best {
			best, arg = v, i
		}
	}
	return arg
}

// Value returns the critic's V(s), or 0 before initial training.
func (a *Agent) Value(s []float64) float64 {
	if !a.critic.Initialized() {
		return 0
	}
	return a.critic.PredictOne(s)[0]
}

// Observe performs one actor-critic step: TD error from the critic, a
// policy-gradient update of the actor, and a (random-update gated)
// sequential update of the critic.
func (a *Agent) Observe(t replay.Transition) error {
	target := t.Reward
	if !t.Done {
		target += a.cfg.Gamma * a.Value(t.NextState)
	}
	if target < a.cfg.ClipLow {
		target = a.cfg.ClipLow
	}
	if target > a.cfg.ClipHigh {
		target = a.cfg.ClipHigh
	}

	if !a.critic.Initialized() {
		a.buffer.Add(t)
		if a.buffer.Full() {
			if err := a.initCritic(); err != nil {
				return err
			}
		}
		return nil
	}

	// TD error before updating the critic.
	delta := target - a.Value(t.State)

	// Actor update: W += lr * delta * hᵀ (onehot(a) − π(s)).
	h := a.actorFeatures.HiddenOne(t.State)
	pi := a.Policy(t.State)
	for j := 0; j < a.cfg.ActionCount; j++ {
		grad := -pi[j]
		if j == t.Action {
			grad += 1
		}
		if grad == 0 {
			continue
		}
		f := a.cfg.ActorLR * delta * grad
		for i := 0; i < a.cfg.Hidden; i++ {
			a.actorW.Set(i, j, a.actorW.At(i, j)+f*h[i])
		}
	}

	// Critic update (random-update gated, like the Q-network).
	if a.rng.Float64() < a.cfg.Epsilon2 {
		if err := a.critic.SeqTrainOne(t.State, []float64{target}); err != nil {
			return err
		}
		a.counters.Add(timing.PhaseSeqTrain, a.dims.SeqTrainFlops())
	}
	return nil
}

// initCritic runs the critic's ReOS-ELM initial training on the buffered
// transitions with clipped TD targets (V(s') = 0 pre-training).
func (a *Agent) initCritic() error {
	trans := a.buffer.Drain()
	k := len(trans)
	x := mat.Zeros(k, a.cfg.ObservationSize)
	y := mat.Zeros(k, 1)
	for i, tr := range trans {
		x.SetRow(i, tr.State)
		target := tr.Reward // V(next) is 0 before training
		if target < a.cfg.ClipLow {
			target = a.cfg.ClipLow
		}
		if target > a.cfg.ClipHigh {
			target = a.cfg.ClipHigh
		}
		y.Set(i, 0, target)
	}
	a.counters.Add(timing.PhaseInitTrain, a.dims.InitTrainFlops(k))
	return a.critic.InitTrain(x, y)
}

// EndEpisode is part of the harness contract; the actor-critic has no
// target network to sync.
func (a *Agent) EndEpisode(int) {}

// Reinitialize redraws all weights (the reset rule).
func (a *Agent) Reinitialize() { a.initModels() }

// CriticInitialized reports whether the critic finished initial training.
func (a *Agent) CriticInitialized() bool { return a.critic.Initialized() }
