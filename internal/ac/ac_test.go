package ac

import (
	"math"
	"testing"

	"oselmrl/internal/env"
	"oselmrl/internal/replay"
)

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig(0, 2, 8)
	if _, err := New(bad); err == nil {
		t.Error("zero observation size must fail")
	}
	bad2 := DefaultConfig(4, 2, 8)
	bad2.ActorLR = 0
	if _, err := New(bad2); err == nil {
		t.Error("zero actor lr must fail")
	}
}

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	p = softmax([]float64{100, 0})
	if p[0] < 0.999 {
		t.Errorf("dominant preference softmax = %v", p)
	}
	// Numerical stability for large values.
	p = softmax([]float64{1e5, 1e5 - 1})
	if math.IsNaN(p[0]) || p[0] <= p[1] {
		t.Errorf("large-value softmax = %v", p)
	}
}

func TestPolicyIsDistribution(t *testing.T) {
	a := MustNew(DefaultConfig(4, 3, 16))
	p := a.Policy([]float64{0.1, -0.2, 0.3, 0})
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("policy sums to %v", sum)
	}
}

func TestCriticInitTraining(t *testing.T) {
	cfg := DefaultConfig(4, 2, 8)
	a := MustNew(cfg)
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 7; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.5}); err != nil {
			t.Fatal(err)
		}
		if a.CriticInitialized() {
			t.Fatal("critic trained too early")
		}
	}
	if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0.5}); err != nil {
		t.Fatal(err)
	}
	if !a.CriticInitialized() {
		t.Fatal("critic must initialize when the buffer fills")
	}
	// Value moves toward the clipped reward.
	if v := a.Value(s); math.Abs(v-0.5) > 0.2 {
		t.Errorf("V(s) = %v after training toward 0.5", v)
	}
}

func TestActorMovesTowardRewardedAction(t *testing.T) {
	cfg := DefaultConfig(2, 2, 8)
	cfg.Seed = 3
	a := MustNew(cfg)
	s := []float64{0.5, -0.5}
	// Fill the critic buffer with neutral transitions.
	for i := 0; i < 8; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Repeatedly reward action 1 (done=true so the target is the reward).
	for i := 0; i < 300; i++ {
		if err := a.Observe(replay.Transition{State: s, Action: 1, Reward: 1, NextState: s, Done: true}); err != nil {
			t.Fatal(err)
		}
	}
	// The TD error shrinks as the critic converges to V(s)=1, so the
	// actor's preference gap is modest but must clearly favor action 1.
	p := a.Policy(s)
	if p[1] <= 0.55 {
		t.Errorf("policy after rewarding action 1: %v", p)
	}
	if a.GreedyAction(s) != 1 {
		t.Error("greedy action must be the rewarded one")
	}
}

func TestReinitialize(t *testing.T) {
	a := MustNew(DefaultConfig(4, 2, 8))
	s := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < 10; i++ {
		if err := a.Observe(replay.Transition{State: s, NextState: s, Reward: 1}); err != nil {
			t.Fatal(err)
		}
	}
	a.Reinitialize()
	if a.CriticInitialized() {
		t.Error("Reinitialize must reset the critic")
	}
	if a.Value(s) != 0 {
		t.Error("value must be 0 pre-training")
	}
}

// Integration: the actor-critic improves on GridWorld (a deterministic,
// quickly-solvable task).
func TestActorCriticLearnsGridWorld(t *testing.T) {
	g := env.NewGridWorld(3, 5)
	cfg := DefaultConfig(g.ObservationSize(), g.ActionCount(), 24)
	cfg.Seed = 7
	cfg.ActorLR = 0.2
	a := MustNew(cfg)
	for ep := 0; ep < 800; ep++ {
		s := g.Reset()
		for {
			act := a.SelectAction(s)
			ns, r, done := g.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			if done {
				break
			}
		}
		a.EndEpisode(ep + 1)
	}
	// Greedy rollout should reach the goal reasonably fast.
	s := g.Reset()
	steps := 0
	for {
		ns, r, done := g.Step(a.GreedyAction(s))
		s = ns
		steps++
		if done {
			if r != 1 {
				t.Fatalf("greedy policy ended with reward %v", r)
			}
			break
		}
		if steps > 12 {
			t.Fatal("greedy policy too slow on 3x3 grid")
		}
	}
}

// Integration: on CartPole the actor-critic beats the random baseline.
func TestActorCriticImprovesCartPole(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// Terminal-only rewards keep the critic's TD error informative: with
	// +1-per-step rewards the clipped V saturates at 1 everywhere and the
	// advantage vanishes (see the package comment).
	e := env.NewShaped(env.NewCartPoleV0(9), env.RewardTerminal)
	cfg := DefaultConfig(4, 2, 32)
	cfg.Seed = 11
	a := MustNew(cfg)
	best := 0.0
	var window []float64
	for ep := 1; ep <= 1200; ep++ {
		s := e.Reset()
		steps := 0
		for {
			act := a.SelectAction(s)
			ns, r, done := e.Step(act)
			if err := a.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				t.Fatal(err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		window = append(window, float64(steps))
		if len(window) >= 100 {
			sum := 0.0
			for _, v := range window[len(window)-100:] {
				sum += v
			}
			if avg := sum / 100; avg > best {
				best = avg
			}
		}
		if ep%400 == 0 && best < 50 {
			a.Reinitialize()
		}
	}
	if best < 40 {
		t.Errorf("actor-critic best 100-episode average = %v (random ~20)", best)
	}
}
