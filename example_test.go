package oselmrl_test

import (
	"fmt"

	"oselmrl"
	"oselmrl/internal/activation"
	"oselmrl/internal/elm"
	"oselmrl/internal/fpga"
	"oselmrl/internal/mat"
	"oselmrl/internal/oselm"
	"oselmrl/internal/rng"
)

// The README quickstart: train the paper's headline design on CartPole-v0
// with the §4.1 hyperparameters and report the outcome.
func Example() {
	agent, err := oselmrl.NewAgent(oselmrl.DesignOSELML2Lipschitz, 4, 2, 32, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	task := oselmrl.NewCartPole(104)
	cfg := oselmrl.DefaultRunConfig()
	cfg.MaxEpisodes = 500
	res := oselmrl.Run(agent, task, cfg)
	fmt.Println("solved:", res.Solved)
	// Output:
	// solved: true
}

// ExampleNewAgent shows that the infeasible 256-unit FPGA design is
// rejected, reproducing Table 3's missing row.
func ExampleNewAgent() {
	_, err := oselmrl.NewAgent(oselmrl.DesignFPGA, 4, 2, 256, 1)
	fmt.Println(err != nil)
	// Output:
	// true
}

// ExampleModelBreakdown converts a run's work counters into the paper's
// Figure 5 execution-time phases.
func ExampleModelBreakdown() {
	agent, _ := oselmrl.NewAgent(oselmrl.DesignOSELM, 4, 2, 16, 1)
	cfg := oselmrl.DefaultRunConfig()
	cfg.MaxEpisodes = 50
	cfg.RecordCurve = false
	res := oselmrl.Run(agent, oselmrl.NewCartPole(101), cfg)
	bd := oselmrl.ModelBreakdown(oselmrl.DesignOSELM, res)
	fmt.Println(bd.Total() > 0)
	// Output:
	// true
}

// ExampleModel_SeqTrainOne demonstrates the paper's central machinery: an
// OS-ELM learns a linear map from an initial chunk plus rank-1 sequential
// updates, converging to the same solution a batch solve would give.
func ExampleModel_SeqTrainOne() {
	r := rng.New(7)
	base := elm.NewModel(1, 20, 1, activation.Sigmoid, r, elm.DefaultOptions())
	m := oselm.New(base, 0.01)

	// Initial training (Eq. 8) on 20 samples of y = 2x.
	x := mat.Zeros(20, 1)
	y := mat.Zeros(20, 1)
	for i := 0; i < 20; i++ {
		v := r.Uniform(-1, 1)
		x.Set(i, 0, v)
		y.Set(i, 0, 2*v)
	}
	if err := m.InitTrain(x, y); err != nil {
		fmt.Println(err)
		return
	}
	// Sequential training (Eq. 5, k = 1) on a further stream.
	for i := 0; i < 500; i++ {
		v := r.Uniform(-1, 1)
		if err := m.SeqTrainOne([]float64{v}, []float64{2 * v}); err != nil {
			fmt.Println(err)
			return
		}
	}
	pred := m.PredictOne([]float64{0.25})[0]
	fmt.Printf("f(0.25) = %.1f\n", pred)
	// Output:
	// f(0.25) = 0.5
}

// ExampleCore shows the bit-accurate fixed-point datapath with its cycle
// accounting — one seq_train invocation at 64 hidden units costs exactly
// the cycles the paper's single-MAC design would spend.
func ExampleCore() {
	core := fpga.NewCore(5, 64, 1, fpga.DefaultCycleModel())
	fmt.Println("seq_train cycles:", core.SeqTrainCycles())
	fmt.Printf("at 125 MHz: %.1f us\n", float64(core.SeqTrainCycles())/125)
	// Output:
	// seq_train cycles: 17521
	// at 125 MHz: 140.2 us
}

// ExampleNewAgentQ selects the FPGA datapath's Qm.f precision through
// the facade. Moving the binary point changes the quantization grid —
// and nothing else: the 32-bit word keeps storage, cycle counts and the
// Table 3 resources identical across formats.
func ExampleNewAgentQ() {
	for _, q := range []oselmrl.QFormat{oselmrl.Q16, oselmrl.Q20, oselmrl.Q24} {
		agent, err := oselmrl.NewAgentQ(oselmrl.DesignFPGA, 4, 2, 64, 1, q)
		if err != nil {
			fmt.Println(err)
			return
		}
		core := agent.(*fpga.Agent).Core()
		fmt.Printf("%s: resolution %.1e, max %.6g, seq_train cycles %d\n",
			q, q.Resolution(), q.MaxValue(), core.SeqTrainCycles())
	}
	// Output:
	// Q16: resolution 1.5e-05, max 32768, seq_train cycles 17521
	// Q20: resolution 9.5e-07, max 2048, seq_train cycles 17521
	// Q24: resolution 6.0e-08, max 128, seq_train cycles 17521
}

// ExampleEstimateResources reproduces a row of the paper's Table 3.
func ExampleEstimateResources() {
	u := fpga.EstimateResources(5, 64)
	bram, dsp, _, _ := u.Percent(fpga.XC7Z020)
	fmt.Printf("BRAM %.2f%% DSP %.2f%%\n", bram, dsp)
	// Output:
	// BRAM 11.43% DSP 1.82%
}
