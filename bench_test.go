// Benchmarks regenerating the paper's tables and figures (see DESIGN.md's
// per-experiment index). Each benchmark either measures the kernel whose
// cost the figure plots (reported as ns/op plus modelled device time) or
// runs a compact version of the experiment and reports its outcome as
// custom metrics. The full-scale regenerations live in cmd/traincurve,
// cmd/timetocomplete and cmd/fpgares; these benches make every experiment
// reproducible from `go test -bench`.
package oselmrl_test

import (
	"fmt"
	"math"
	"testing"

	"oselmrl"
	"oselmrl/internal/activation"
	"oselmrl/internal/dqn"
	"oselmrl/internal/elm"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fleet"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/mat"
	"oselmrl/internal/onlad"
	"oselmrl/internal/oselm"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
	"oselmrl/internal/timing"
)

// paperHiddenSizes are the hidden widths the paper sweeps (§4.2-4.4).
var paperHiddenSizes = []int{32, 64, 128, 192}

// ---------------------------------------------------------------------------
// Table 3: FPGA resource utilization (experiment E2).

func BenchmarkTable3Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fpga.Table3Sweep()
		if rows[4].Feasible {
			b.Fatal("256-unit design must not fit")
		}
	}
	// Report the headline row as metrics: BRAM% at 192 units.
	u := fpga.EstimateResources(5, 192)
	bramPct, _, _, _ := u.Percent(fpga.XC7Z020)
	b.ReportMetric(bramPct, "BRAM%@192")
}

// ---------------------------------------------------------------------------
// Figure 4: training curves (experiment E3). Each sub-benchmark trains one
// design for a fixed episode budget and reports the best 100-episode moving
// average as a metric — the quantity Figure 4's dark lines plot.

func trainBudget(d harness.Design) int {
	if d == harness.DesignDQN {
		return 150 // backprop per step: keep the bench affordable
	}
	return 600
}

func BenchmarkFigure4TrainingCurve(b *testing.B) {
	for _, d := range harness.TrainingCurveDesigns {
		d := d
		b.Run(fmt.Sprintf("%s/32units", d), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				agent, err := harness.NewAgent(d, 4, 2, 32, uint64(i)+4)
				if err != nil {
					b.Fatal(err)
				}
				task := env.NewShaped(env.NewCartPoleV0(uint64(i)+104), env.RewardSurvival)
				cfg := harness.RunConfigFor(d, harness.Defaults())
				cfg.MaxEpisodes = trainBudget(d)
				res := harness.Run(agent, task, cfg)
				best = 0
				for _, p := range res.Curve {
					if p.MovingAvg > best {
						best = p.MovingAvg
					}
				}
			}
			b.ReportMetric(best, "best_100ep_avg")
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 5: execution time to complete (experiment E4). The figure's cost
// driver is the per-step work of each design; each sub-benchmark measures
// one agent step (action selection + observation/update) on a live run and
// reports the modelled device time per step alongside ns/op.

// stepper drives an agent through an endless stream of environment steps.
type stepper struct {
	agent harness.Agent
	env   env.Env
	state []float64
	ep    int
}

func newStepper(b *testing.B, d harness.Design, hidden int) *stepper {
	agent, err := harness.NewAgent(d, 4, 2, hidden, 7)
	if err != nil {
		b.Skipf("%s at %d units: %v", d, hidden, err)
	}
	e := env.NewShaped(env.NewCartPoleV0(107), env.RewardSurvival)
	return &stepper{agent: agent, env: e, state: e.Reset(), ep: 1}
}

func (s *stepper) step(b *testing.B) {
	act := s.agent.SelectAction(s.state)
	next, r, done := s.env.Step(act)
	if err := s.agent.Observe(replay.Transition{
		State: s.state, Action: act, Reward: r, NextState: next, Done: done,
	}); err != nil {
		b.Fatal(err)
	}
	s.state = next
	if done {
		s.agent.EndEpisode(s.ep)
		s.ep++
		s.state = s.env.Reset()
	}
}

func (s *stepper) modelSecondsPerStep(d harness.Design, steps int) float64 {
	if steps == 0 {
		return 0
	}
	return harness.Breakdown(d, s.agent.Counters()).Total() / float64(steps)
}

func BenchmarkFigure5TimeToComplete(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		for _, d := range harness.AllDesigns {
			d, hidden := d, hidden
			b.Run(fmt.Sprintf("%s/%dunits", d, hidden), func(b *testing.B) {
				s := newStepper(b, d, hidden)
				// Warm past initial training so steady-state cost is measured.
				for i := 0; i < hidden+40; i++ {
					s.step(b)
				}
				s.agent.Counters().Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.step(b)
				}
				b.StopTimer()
				b.ReportMetric(1e6*s.modelSecondsPerStep(d, b.N), "model_us/step")
			})
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 6: FPGA detail (experiment E5) — the fixed-point core's datapath
// cycles per module invocation at each hidden width.

func BenchmarkFigure6FPGADetail(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		hidden := hidden
		b.Run(fmt.Sprintf("seq_train/%dunits", hidden), func(b *testing.B) {
			core := fpga.NewCore(5, hidden, 1, fpga.DefaultCycleModel())
			x := make([]fixed.Fixed, 5)
			for i := range x {
				x[i] = fixed.FromFloat(0.1 * float64(i))
			}
			t := []fixed.Fixed{fixed.FromFloat(0.5)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SeqTrain(x, t)
			}
			b.StopTimer()
			b.ReportMetric(float64(core.SeqTrainCycles()), "pl_cycles")
			b.ReportMetric(float64(core.SeqTrainCycles())/125.0, "pl_us@125MHz")
		})
		b.Run(fmt.Sprintf("predict/%dunits", hidden), func(b *testing.B) {
			core := fpga.NewCore(5, hidden, 1, fpga.DefaultCycleModel())
			x := make([]fixed.Fixed, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Predict(x)
			}
			b.StopTimer()
			b.ReportMetric(float64(core.PredictCycles()), "pl_cycles")
		})
	}
}

// ---------------------------------------------------------------------------
// Headline (experiment E6): per-step modelled device time ratio DQN vs
// OS-ELM-L2-Lipschitz vs FPGA at 64 units — the §4.4 speedup driver.

func BenchmarkHeadlineSpeedupDrivers(b *testing.B) {
	perStep := map[harness.Design]float64{}
	for _, d := range []harness.Design{harness.DesignOSELML2Lipschitz, harness.DesignDQN, harness.DesignFPGA} {
		s := newStepper(b, d, 64)
		for i := 0; i < 120; i++ {
			s.step(b)
		}
		s.agent.Counters().Reset()
		steps := 400
		for i := 0; i < steps; i++ {
			s.step(b)
		}
		perStep[d] = s.modelSecondsPerStep(d, steps)
	}
	for i := 0; i < b.N; i++ {
		_ = perStep
	}
	b.ReportMetric(perStep[harness.DesignDQN]/perStep[harness.DesignOSELML2Lipschitz], "dqn/oselm_per_step")
	b.ReportMetric(perStep[harness.DesignDQN]/perStep[harness.DesignFPGA], "dqn/fpga_per_step")
}

// ---------------------------------------------------------------------------
// Ablation A1: the L2 parameter δ (§4.1 chose 1 and 0.5).

func BenchmarkAblationDelta(b *testing.B) {
	for _, delta := range []float64{0.1, 0.5, 1, 2} {
		delta := delta
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
				cfg.Delta = delta
				cfg.Seed = uint64(i) + 4
				agent := qnet.MustNew(cfg)
				task := env.NewShaped(env.NewCartPoleV0(uint64(i)+104), env.RewardSurvival)
				rc := harness.Defaults()
				rc.MaxEpisodes = 400
				res := harness.Run(agent, task, rc)
				best = 0
				for _, p := range res.Curve {
					if p.MovingAvg > best {
						best = p.MovingAvg
					}
				}
			}
			b.ReportMetric(best, "best_100ep_avg")
		})
	}
}

// Ablation A2: the random-update probability ε₂ (§3.2).

func BenchmarkAblationRandomUpdate(b *testing.B) {
	for _, eps2 := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		eps2 := eps2
		b.Run(fmt.Sprintf("eps2=%g", eps2), func(b *testing.B) {
			var best float64
			var updates int64
			for i := 0; i < b.N; i++ {
				cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
				cfg.Epsilon2 = eps2
				cfg.Seed = uint64(i) + 4
				agent := qnet.MustNew(cfg)
				task := env.NewShaped(env.NewCartPoleV0(uint64(i)+104), env.RewardSurvival)
				rc := harness.Defaults()
				rc.MaxEpisodes = 400
				res := harness.Run(agent, task, rc)
				best = 0
				for _, p := range res.Curve {
					if p.MovingAvg > best {
						best = p.MovingAvg
					}
				}
				updates = agent.Counters().Calls(timing.PhaseSeqTrain)
			}
			b.ReportMetric(best, "best_100ep_avg")
			b.ReportMetric(float64(updates), "seq_updates")
		})
	}
}

// Ablation A3: fixed-point fraction width (§4.2 chose Q20) — quantization
// drift of the datapath against the float reference after a burst of
// sequential updates.

func BenchmarkAblationFixedPoint(b *testing.B) {
	for _, frac := range []uint{12, 16, 20, 24} {
		frac := frac
		b.Run(fmt.Sprintf("frac=%d", frac), func(b *testing.B) {
			q := fixed.QFormat{Frac: frac}
			var worst float64
			for i := 0; i < b.N; i++ {
				r := rng.New(uint64(i) + 1)
				base := elm.NewModel(5, 16, 1, activation.ReLU, r,
					elm.Options{InitLow: -1, InitHigh: 1, SpectralNormalizeAlpha: true})
				m := oselm.New(base, 0.5)
				x := mat.Zeros(16, 5)
				y := mat.Zeros(16, 1)
				r.FillUniform(x.RawData(), -1, 1)
				r.FillUniform(y.RawData(), -1, 1)
				if err := m.InitTrain(x, y); err != nil {
					b.Fatal(err)
				}
				quant := m.Clone()
				worst = 0
				for step := 0; step < 500; step++ {
					xi := make([]float64, 5)
					r.FillUniform(xi, -1, 1)
					ti := []float64{r.Uniform(-1, 1)}
					if err := m.SeqTrainOne(xi, ti); err != nil {
						b.Fatal(err)
					}
					// Quantize the input/target path like the datapath does.
					qx := make([]float64, 5)
					for j, v := range xi {
						qx[j] = q.Quantize(v)
					}
					if err := quant.SeqTrainOne(qx, []float64{q.Quantize(ti[0])}); err != nil {
						b.Fatal(err)
					}
					// Quantize the updated weights to the grid.
					for j, v := range quant.Beta.RawData() {
						quant.Beta.RawData()[j] = q.Quantize(v)
					}
				}
				probe := []float64{0.2, -0.3, 0.5, -0.1, 1}
				d := math.Abs(m.PredictOne(probe)[0] - quant.PredictOne(probe)[0])
				if d > worst {
					worst = d
				}
			}
			b.ReportMetric(worst, "max_drift")
		})
	}
}

// Extension X2: other reinforcement-learning tasks (paper §5 future work).

func BenchmarkExtraEnvs(b *testing.B) {
	envs := map[string]func(seed uint64) env.Env{
		"MountainCar": func(s uint64) env.Env {
			return env.NewShaped(env.NewMountainCar(s), env.RewardPerStepClipped)
		},
		"Acrobot": func(s uint64) env.Env {
			return env.NewShaped(env.NewAcrobot(s), env.RewardPerStepClipped)
		},
		"GridWorld": func(s uint64) env.Env { return env.NewGridWorld(5, s) },
		"Lander": func(s uint64) env.Env {
			return env.NewShaped(env.NewLander(s), env.RewardPerStepClipped)
		},
		"CliffWalking": func(s uint64) env.Env {
			return env.NewShaped(env.NewCliffWalk(), env.RewardPerStepClipped)
		},
		"Pendulum": func(s uint64) env.Env {
			return env.NewShaped(env.NewPendulum(s), env.RewardPerStepClipped)
		},
	}
	for name, mk := range envs {
		name, mk := name, mk
		b.Run(name, func(b *testing.B) {
			e := mk(11)
			cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz,
				e.ObservationSize(), e.ActionCount(), 32)
			cfg.Seed = 11
			agent := qnet.MustNew(cfg)
			state := e.Reset()
			ep := 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				act := agent.SelectAction(state)
				next, r, done := e.Step(act)
				if err := agent.Observe(replay.Transition{
					State: state, Action: act, Reward: r, NextState: next, Done: done,
				}); err != nil {
					b.Fatal(err)
				}
				state = next
				if done {
					agent.EndEpisode(ep)
					ep++
					state = e.Reset()
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Kernel benchmarks: the primitive costs everything above is built from.

func BenchmarkOSELMSeqTrainKernel(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		hidden := hidden
		b.Run(fmt.Sprintf("%dunits", hidden), func(b *testing.B) {
			r := rng.New(1)
			base := elm.NewModel(5, hidden, 1, activation.ReLU, r, elm.DefaultOptions())
			m := oselm.New(base, 0.5)
			x := mat.Zeros(hidden, 5)
			y := mat.Zeros(hidden, 1)
			r.FillUniform(x.RawData(), -1, 1)
			r.FillUniform(y.RawData(), -1, 1)
			if err := m.InitTrain(x, y); err != nil {
				b.Fatal(err)
			}
			xi := []float64{0.1, -0.2, 0.3, -0.4, 1}
			ti := []float64{0.5}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.SeqTrainOne(xi, ti); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOSELMPredictKernel(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		hidden := hidden
		b.Run(fmt.Sprintf("%dunits", hidden), func(b *testing.B) {
			r := rng.New(1)
			base := elm.NewModel(5, hidden, 1, activation.ReLU, r, elm.DefaultOptions())
			r.FillUniform(base.Beta.RawData(), -1, 1)
			xi := []float64{0.1, -0.2, 0.3, -0.4, 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = base.PredictOne(xi)
			}
		})
	}
}

func BenchmarkELMInitTrainKernel(b *testing.B) {
	for _, hidden := range []int{32, 64, 128} {
		hidden := hidden
		b.Run(fmt.Sprintf("%dunits", hidden), func(b *testing.B) {
			r := rng.New(1)
			x := mat.Zeros(hidden, 5)
			y := mat.Zeros(hidden, 1)
			r.FillUniform(x.RawData(), -1, 1)
			r.FillUniform(y.RawData(), -1, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := elm.NewModel(5, hidden, 1, activation.ReLU, rng.New(1), elm.DefaultOptions())
				m := oselm.New(base, 0.5)
				if err := m.InitTrain(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFPGACoreKernels(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		hidden := hidden
		b.Run(fmt.Sprintf("seq_train/%dunits", hidden), func(b *testing.B) {
			core := fpga.NewCore(5, hidden, 1, fpga.DefaultCycleModel())
			x := make([]fixed.Fixed, 5)
			t := []fixed.Fixed{fixed.FromFloat(0.3)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SeqTrain(x, t)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Device profiler overhead: the off row must track the plain seq_train
// kernel (the nil-check disabled path is the zero-cost guarantee); the on
// row bounds the full (phase × kernel × unit) attribution cost. Same
// kernel and hidden width, so the pair reads as a direct A/B in the
// BENCH_<n>.json trajectory.

func BenchmarkFPGAProfiler(b *testing.B) {
	for _, profile := range []bool{false, true} {
		name := "off"
		if profile {
			name = "on"
		}
		b.Run(fmt.Sprintf("%s/32units", name), func(b *testing.B) {
			core := fpga.NewCore(5, 32, 1, fpga.DefaultCycleModel())
			if profile {
				core.EnableProfiling()
			}
			x := make([]fixed.Fixed, 5)
			t := []fixed.Fixed{fixed.FromFloat(0.3)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.SeqTrain(x, t)
			}
		})
	}
}

// BenchmarkFleetSimulate measures the discrete-event fleet simulator on
// the population-training workload (8 members x 50 transitions at 64
// hidden units) and reports the modelled speedup per core count — the
// fleet-sim throughput row in the BENCH_<n>.json trajectory.
func BenchmarkFleetSimulate(b *testing.B) {
	costs := fpga.AnalyticKernelCosts(5, 64, 1, fpga.DefaultCycleModel())
	w := fleet.PopulationTraining(8, 50, costs)
	for _, cores := range []int{1, 4, 8} {
		cores := cores
		b.Run(fmt.Sprintf("%dcores", cores), func(b *testing.B) {
			var res *fleet.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res = fleet.Simulate(w, fleet.Config{Cores: cores})
			}
			b.ReportMetric(res.Speedup(), "modelled_speedup")
			b.ReportMetric(float64(len(res.Log))/b.Elapsed().Seconds()*float64(b.N), "events/s")
		})
	}
}

func BenchmarkDQNTrainStep(b *testing.B) {
	for _, hidden := range paperHiddenSizes {
		hidden := hidden
		b.Run(fmt.Sprintf("%dunits", hidden), func(b *testing.B) {
			cfg := dqn.DefaultConfig(4, 2, hidden)
			cfg.Seed = 1
			agent := dqn.MustNew(cfg)
			s := []float64{0.1, 0.2, 0.3, 0.4}
			// Prime the replay buffer.
			for i := 0; i < 31; i++ {
				if err := agent.Observe(replay.Transition{State: s, NextState: s}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := agent.Observe(replay.Transition{State: s, Action: i % 2, Reward: 1, NextState: s, Done: i%7 == 0}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGEMM(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		n := n
		b.Run(fmt.Sprintf("serial/%dx%d", n, n), func(b *testing.B) {
			r := rng.New(1)
			x := mat.Zeros(n, n)
			y := mat.Zeros(n, n)
			r.FillUniform(x.RawData(), -1, 1)
			r.FillUniform(y.RawData(), -1, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = mat.MulSerial(x, y)
			}
		})
	}
	b.Run("parallel/256x256", func(b *testing.B) {
		r := rng.New(1)
		x := mat.Zeros(256, 256)
		y := mat.Zeros(256, 256)
		r.FillUniform(x.RawData(), -1, 1)
		r.FillUniform(y.RawData(), -1, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = mat.MulParallel(x, y)
		}
	})
}

func BenchmarkCartPoleStep(b *testing.B) {
	e := env.NewCartPoleV0(1)
	e.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done := e.Step(i % 2)
		if done {
			e.Reset()
		}
	}
}

// Facade sanity: the public API constructs and steps.
func BenchmarkFacadeAgentStep(b *testing.B) {
	agent, err := oselmrl.NewAgent(oselmrl.DesignOSELML2Lipschitz, 4, 2, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	task := oselmrl.NewCartPole(101)
	state := task.Reset()
	ep := 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		act := agent.SelectAction(state)
		next, r, done := task.Step(act)
		if err := agent.Observe(replay.Transition{State: state, Action: act, Reward: r, NextState: next, Done: done}); err != nil {
			b.Fatal(err)
		}
		state = next
		if done {
			agent.EndEpisode(ep)
			ep++
			state = task.Reset()
		}
	}
}

// ---------------------------------------------------------------------------
// Extension ablations beyond the paper (DESIGN.md X3/X4 plus the
// Lipschitz-robustness probe).

// BenchmarkRobustnessNoise sweeps observation-noise levels against the
// plain and fully-regularized OS-ELM designs. The paper's §3.3 Lipschitz
// argument predicts the regularized design degrades more gracefully.
func BenchmarkRobustnessNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.05, 0.1} {
		for _, v := range []qnet.Variant{qnet.VariantOSELM, qnet.VariantOSELML2Lipschitz} {
			noise, v := noise, v
			b.Run(fmt.Sprintf("%s/noise=%g", v, noise), func(b *testing.B) {
				var best float64
				for i := 0; i < b.N; i++ {
					cfg := qnet.DefaultConfig(v, 4, 2, 32)
					cfg.Seed = uint64(i) + 4
					agent := qnet.MustNew(cfg)
					inner := env.NewShaped(env.NewCartPoleV0(uint64(i)+104), env.RewardSurvival)
					p := env.NewPerturbed(inner, uint64(i)+204)
					p.NoiseStd = noise
					rc := harness.Defaults()
					rc.MaxEpisodes = 400
					res := harness.Run(agent, p, rc)
					best = 0
					for _, pt := range res.Curve {
						if pt.MovingAvg > best {
							best = pt.MovingAvg
						}
					}
				}
				b.ReportMetric(best, "best_100ep_avg")
			})
		}
	}
}

// BenchmarkAblationDoubleQ compares standard and Double-Q targets.
func BenchmarkAblationDoubleQ(b *testing.B) {
	for _, dq := range []bool{false, true} {
		dq := dq
		name := "standard"
		if dq {
			name = "double-q"
		}
		b.Run(name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 32)
				cfg.Seed = uint64(i) + 4
				cfg.DoubleQ = dq
				agent := qnet.MustNew(cfg)
				task := env.NewShaped(env.NewCartPoleV0(uint64(i)+104), env.RewardSurvival)
				rc := harness.Defaults()
				rc.MaxEpisodes = 400
				res := harness.Run(agent, task, rc)
				best = 0
				for _, pt := range res.Curve {
					if pt.MovingAvg > best {
						best = pt.MovingAvg
					}
				}
			}
			b.ReportMetric(best, "best_100ep_avg")
		})
	}
}

// BenchmarkForgettingKernel measures the forgetting-factor rank-1 update
// against the plain one (same asymptotic cost; the factor adds one scale).
// Inputs vary per iteration: forgetting RLS requires persistent excitation
// (see oselm.SeqTrainOneForgetting), so hammering one fixed input for
// b.N = 100k+ iterations would wind P up until the update correctly
// rejects it. Each sub-benchmark gets its own fresh model.
func BenchmarkForgettingKernel(b *testing.B) {
	freshModel := func(b *testing.B) *oselm.Model {
		r := rng.New(1)
		base := elm.NewModel(5, 64, 1, activation.ReLU, r, elm.DefaultOptions())
		m := oselm.New(base, 0.5)
		x := mat.Zeros(64, 5)
		y := mat.Zeros(64, 1)
		r.FillUniform(x.RawData(), -1, 1)
		r.FillUniform(y.RawData(), -1, 1)
		if err := m.InitTrain(x, y); err != nil {
			b.Fatal(err)
		}
		return m
	}
	b.Run("plain", func(b *testing.B) {
		m := freshModel(b)
		r := rng.New(2)
		xi := make([]float64, 5)
		ti := []float64{0.5}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.FillUniform(xi, -1, 1)
			if err := m.SeqTrainOne(xi, ti); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("forgetting", func(b *testing.B) {
		// λ < 1 winds P up along the unexcited hidden directions (the
		// 5-D input manifold cannot excite all 64), so mirror the reset
		// rule: refresh the model every few thousand updates, off-timer.
		m := freshModel(b)
		r := rng.New(3)
		xi := make([]float64, 5)
		ti := []float64{0.5}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%4000 == 3999 {
				b.StopTimer()
				m = freshModel(b)
				b.StartTimer()
			}
			r.FillUniform(xi, -1, 1)
			if err := m.SeqTrainOneForgetting(xi, ti, 0.995); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gain_trace", func(b *testing.B) {
		m := freshModel(b)
		var g float64
		for i := 0; i < b.N; i++ {
			g = m.GainTrace()
		}
		b.ReportMetric(g, "mean_eigenvalue")
	})
}

// BenchmarkONLADUpdate measures the reference-[3] substrate's on-device
// adaptation step (an autoencoder rank-1 update plus scoring).
func BenchmarkONLADUpdate(b *testing.B) {
	cfg := onlad.DefaultConfig(8, 32)
	det := onlad.MustNew(cfg)
	r := rng.New(1)
	calib := mat.Zeros(64, 8)
	r.FillUniform(calib.RawData(), -1, 1)
	if err := det.Fit(calib); err != nil {
		b.Fatal(err)
	}
	x := make([]float64, 8)
	r.FillUniform(x, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := det.UpdateIfNormal(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSizeAblation quantifies the paper's §2.2 design choice of
// fixing the sequential batch size at k = 1: the rank-k update needs a
// k×k matrix inverse (the SVD/QRD block the FPGA design eliminates),
// while k rank-1 updates need only scalar reciprocals. Compared at equal
// throughput (samples per iteration).
func BenchmarkBatchSizeAblation(b *testing.B) {
	mk := func(b *testing.B) *oselm.Model {
		r := rng.New(1)
		base := elm.NewModel(5, 64, 1, activation.ReLU, r, elm.DefaultOptions())
		m := oselm.New(base, 0.5)
		x := mat.Zeros(64, 5)
		y := mat.Zeros(64, 1)
		r.FillUniform(x.RawData(), -1, 1)
		r.FillUniform(y.RawData(), -1, 1)
		if err := m.InitTrain(x, y); err != nil {
			b.Fatal(err)
		}
		return m
	}
	for _, k := range []int{1, 4, 16} {
		k := k
		b.Run(fmt.Sprintf("rank1_x%d", k), func(b *testing.B) {
			m := mk(b)
			r := rng.New(2)
			xi := make([]float64, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					r.FillUniform(xi, -1, 1)
					if err := m.SeqTrainOne(xi, []float64{0.5}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("rankk_k%d", k), func(b *testing.B) {
			m := mk(b)
			r := rng.New(2)
			x := mat.Zeros(k, 5)
			y := mat.Zeros(k, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.FillUniform(x.RawData(), -1, 1)
				r.FillUniform(y.RawData(), -1, 1)
				if err := m.SeqTrainBatch(x, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
