package oselmrl_test

import (
	"bytes"
	"math"
	"testing"

	"oselmrl"
	"oselmrl/internal/env"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/timing"
)

// TestFullRunDeterminism: two identical facade runs produce identical
// results — episodes, steps, counters. The whole stack (env physics, RNG,
// agent updates) must be deterministic for the figures to be reproducible.
func TestFullRunDeterminism(t *testing.T) {
	run := func() *oselmrl.Result {
		agent, err := oselmrl.NewAgent(oselmrl.DesignOSELML2Lipschitz, 4, 2, 16, 9)
		if err != nil {
			t.Fatal(err)
		}
		cfg := oselmrl.DefaultRunConfig()
		cfg.MaxEpisodes = 300
		return oselmrl.Run(agent, oselmrl.NewCartPole(109), cfg)
	}
	a, b := run(), run()
	if a.Episodes != b.Episodes || a.TotalSteps != b.TotalSteps || a.Solved != b.Solved {
		t.Fatalf("non-deterministic runs: %+v vs %+v", a, b)
	}
	for _, p := range timing.AllPhases {
		if a.Counters.Calls(p) != b.Counters.Calls(p) || a.Counters.Work(p) != b.Counters.Work(p) {
			t.Fatalf("counters diverge in phase %s", p)
		}
	}
}

// TestFPGAAgentTracksFloatAgent: with identical seeds the fixed-point FPGA
// agent and the float OS-ELM-L2-Lipschitz agent start from the same random
// weights; their initial-training outputs must agree closely (drift grows
// only through the quantized sequential updates).
func TestFPGAAgentTracksFloatAgent(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, 16)
	cfg.Seed = 21
	floatAgent := qnet.MustNew(cfg)
	fpgaAgent := fpga.MustNewAgent(cfg, fpga.DefaultCycleModel())

	// Feed both the exact same transitions to fill buffer D.
	s := []float64{0.1, -0.1, 0.05, -0.05}
	for i := 0; i < 16; i++ {
		tr := replay.Transition{State: s, Action: i % 2, Reward: 0.1, NextState: s}
		if err := floatAgent.Observe(tr); err != nil {
			t.Fatal(err)
		}
		if err := fpgaAgent.Observe(tr); err != nil {
			t.Fatal(err)
		}
	}
	if !floatAgent.Trained() || !fpgaAgent.Trained() {
		t.Fatal("both agents must have completed initial training")
	}
	// The fixed-point core's predictions must track the float model.
	qf := floatAgent.Theta1().PredictOne([]float64{0.1, -0.1, 0.05, -0.05, 1})
	qx := fpgaAgent.Core().PredictFloat([]float64{0.1, -0.1, 0.05, -0.05, 1})
	if math.Abs(qf[0]-qx[0]) > 1e-3 {
		t.Errorf("post-init predictions diverge: float %v fixed %v", qf[0], qx[0])
	}
}

// TestPersistAcrossHarness: train through the harness, persist, reload,
// and verify the restored agent scores at least as well greedily.
func TestPersistAcrossHarness(t *testing.T) {
	cfg := qnet.DefaultConfig(qnet.VariantOSELML2, 4, 2, 16)
	cfg.Seed = 2
	agent := qnet.MustNew(cfg)
	rc := harness.Defaults()
	rc.MaxEpisodes = 400
	rc.RecordCurve = false
	harness.Run(agent, env.NewShaped(env.NewCartPoleV0(102), env.RewardSurvival), rc)

	var buf bytes.Buffer
	if err := persist.SaveAgent(&buf, agent); err != nil {
		t.Fatal(err)
	}
	restored, err := persist.LoadAgent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evalEnv := env.NewCartPoleV0(555)
	a := harness.EvaluateGreedy(agent, evalEnv, 10, true)
	b := harness.EvaluateGreedy(restored, env.NewCartPoleV0(555), 10, true)
	if a != b {
		t.Errorf("greedy scores differ after round trip: %v vs %v", a, b)
	}
}

// TestCountersFeedBreakdownsConsistently: for every design, a short run
// produces counters whose modelled breakdown is positive, finite, and
// dominated by the phases the paper attributes to that design.
func TestCountersFeedBreakdownsConsistently(t *testing.T) {
	for _, d := range harness.AllDesigns {
		d := d
		t.Run(string(d), func(t *testing.T) {
			agent, err := harness.NewAgent(d, 4, 2, 16, 3)
			if err != nil {
				t.Fatal(err)
			}
			rc := harness.RunConfigFor(d, harness.Defaults())
			rc.MaxEpisodes = 60
			rc.RecordCurve = false
			res := harness.Run(agent, env.NewShaped(env.NewCartPoleV0(103), env.RewardSurvival), rc)
			bd := harness.Breakdown(d, res.Counters)
			total := bd.Total()
			if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
				t.Fatalf("breakdown total = %v", total)
			}
			switch d {
			case harness.DesignDQN:
				if bd[timing.PhaseTrainDQN] <= 0 {
					t.Error("DQN must spend time in train_DQN")
				}
				if bd[timing.PhaseSeqTrain] != 0 {
					t.Error("DQN must not record seq_train")
				}
			case harness.DesignELM:
				if bd[timing.PhaseSeqTrain] != 0 {
					t.Error("batch ELM must not record seq_train")
				}
				if bd[timing.PhaseInitTrain] <= 0 {
					t.Error("ELM must record its batch trainings as init_train")
				}
			default:
				if bd[timing.PhaseSeqTrain] <= 0 {
					t.Errorf("%s must record seq_train", d)
				}
				if bd[timing.PhaseTrainDQN] != 0 {
					t.Errorf("%s must not record train_DQN", d)
				}
			}
		})
	}
}

// TestSevenDesignsRunConcurrently: the multi-trial runner executes all
// designs in parallel goroutines without data races (run with -race in CI).
func TestSevenDesignsRunConcurrently(t *testing.T) {
	spec := harness.TrialSpec{
		MakeAgent: func(seed uint64) (harness.Agent, error) {
			d := harness.AllDesigns[int(seed)%len(harness.AllDesigns)]
			return harness.NewAgent(d, 4, 2, 16, seed)
		},
		MakeEnv: func(seed uint64) env.Env {
			return env.NewShaped(env.NewCartPoleV0(seed+100), env.RewardSurvival)
		},
		Config: harness.Config{MaxEpisodes: 30, SolveWindow: 10, SolveThreshold: 1e18,
			ScoreIsSteps: true},
		Trials:      7,
		BaseSeed:    0,
		Parallelism: 7,
	}
	results := harness.RunTrials(spec)
	for i, r := range results {
		if r == nil || r.Err != nil {
			t.Errorf("trial %d: %+v", i, r)
		}
		if r.Episodes != 30 {
			t.Errorf("trial %d episodes = %d", i, r.Episodes)
		}
	}
}
