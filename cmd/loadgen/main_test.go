package main

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
	"oselmrl/internal/serve"
)

// startTwoTenantServer runs an in-process serve.Service with tenants
// alpha (4-dim model) and beta (6-dim model) behind httptest.
func startTwoTenantServer(t *testing.T) *httptest.Server {
	t.Helper()
	dir := t.TempDir()
	paths := map[string]string{}
	for name, dim := range map[string]int{"alpha": 4, "beta": 6} {
		cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, dim, 2, 8)
		cfg.Seed = uint64(dim)
		agent := qnet.MustNew(cfg)
		path := filepath.Join(dir, name+".json")
		if err := persist.SaveAgentFile(path, agent); err != nil {
			t.Fatal(err)
		}
		paths[name] = path
	}
	svc, err := serve.New(serve.Config{Policies: paths, Obs: obs.NewEmitter(nil)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// -tenants must probe each tenant's own /v1/info (the models differ in
// input size) and build per-tenant target URLs.
func TestBuildTargetsPerTenant(t *testing.T) {
	srv := startTwoTenantServer(t)
	client := newClient(2)
	targets, err := buildTargets(client, srv.URL, "/v1/predict", []string{"alpha", "beta"}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("got %d targets, want 2", len(targets))
	}
	wantURL := map[string]string{
		"alpha": srv.URL + "/v1/t/alpha/predict",
		"beta":  srv.URL + "/v1/t/beta/predict",
	}
	wantDim := map[string]int{"alpha": 4, "beta": 6}
	for _, tgt := range targets {
		if tgt.url != wantURL[tgt.tenant] {
			t.Errorf("tenant %s url = %s, want %s", tgt.tenant, tgt.url, wantURL[tgt.tenant])
		}
		// The body is {"state":[0,0,...]} sized by that tenant's model.
		var want int
		for _, c := range tgt.body {
			if c == '0' {
				want++
			}
		}
		if want != wantDim[tgt.tenant] {
			t.Errorf("tenant %s probe state has %d zeros, want %d", tgt.tenant, want, wantDim[tgt.tenant])
		}
	}
	if _, err := buildTargets(client, srv.URL, "/v1/predict", []string{"ghost"}, ""); err == nil {
		t.Error("unknown tenant probed without error")
	}
}

// runPass with -tenants round-robins both tenants and reports per-tenant
// success counts that sum to the total.
func TestRunPassPerTenantCounts(t *testing.T) {
	srv := startTwoTenantServer(t)
	client := newClient(4)
	targets, err := buildTargets(client, srv.URL, "/v1/predict", []string{"alpha", "beta"}, "")
	if err != nil {
		t.Fatal(err)
	}
	rep := runPass(client, targets, 300*time.Millisecond, 4, nil)
	if rep.Errors > 0 || rep.Requests == 0 {
		t.Fatalf("pass unhealthy: %d requests, %d errors", rep.Requests, rep.Errors)
	}
	if rep.Tenants["alpha"] == 0 || rep.Tenants["beta"] == 0 {
		t.Errorf("round-robin skipped a tenant: %v", rep.Tenants)
	}
	if rep.Tenants["alpha"]+rep.Tenants["beta"] != rep.Requests {
		t.Errorf("tenant counts %v don't sum to %d", rep.Tenants, rep.Requests)
	}
}

// abSnapshot rows must carry bench semantics: ns_per_op = 1e9/QPS for
// throughput, p99_ms*1e6 for the tail row, iterations = requests.
func TestABSnapshotRows(t *testing.T) {
	a := report{Requests: 1000, QPS: 2000, P50MS: 1, P99MS: 4}
	b := report{Requests: 3000, QPS: 4000, P50MS: 0.5, P99MS: 3}
	snap := abSnapshot("unbatched", "batched", a, b, 2*time.Second)
	byName := map[string]benchResult{}
	for _, r := range snap.Results {
		byName[r.Name] = r
	}
	cases := []struct {
		name string
		iter int64
		ns   float64
	}{
		{"ServeAB/unbatched/throughput", 1000, 1e9 / 2000},
		{"ServeAB/unbatched/p99", 1000, 4e6},
		{"ServeAB/batched/throughput", 3000, 1e9 / 4000},
		{"ServeAB/batched/p50", 3000, 0.5e6},
		{"ServeAB/batched/p99", 3000, 3e6},
	}
	for _, c := range cases {
		r, ok := byName[c.name]
		if !ok {
			t.Errorf("row %s missing", c.name)
			continue
		}
		if r.Iterations != c.iter || r.NsPerOp != c.ns {
			t.Errorf("%s = {%d, %g}, want {%d, %g}", c.name, r.Iterations, r.NsPerOp, c.iter, c.ns)
		}
	}
	if snap.Benchtime != "2s" {
		t.Errorf("benchtime = %q", snap.Benchtime)
	}
}

func TestParseServerTiming(t *testing.T) {
	cases := []struct {
		in           string
		queue, eval1 float64
	}{
		{"queue;dur=0.0123, eval;dur=0.4567", 0.0123, 0.4567},
		{"queue;dur=1.5", 1.5, 0},
		{"eval;dur=2", 0, 2},
		{"", 0, 0},
		{"db;dur=9, queue;dur=0.25, eval;dur=0.5", 0.25, 0.5},
		{"queue; dur=0.25 , eval;desc=\"x\";dur=0.5", 0.25, 0.5},
		{"queue;dur=bogus", 0, 0},
		{"garbage", 0, 0},
	}
	for _, c := range cases {
		q, e := parseServerTiming(c.in)
		if q != c.queue || e != c.eval1 {
			t.Errorf("parseServerTiming(%q) = (%g, %g), want (%g, %g)", c.in, q, e, c.queue, c.eval1)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Errorf("p50 = %g", q)
	}
	if q := quantile(sorted, 0.99); q != 10 {
		t.Errorf("p99 = %g", q)
	}
	if q := quantile(sorted[:1], 0.5); q != 1 {
		t.Errorf("single-element p50 = %g", q)
	}
}
