package main

import "testing"

func TestParseServerTiming(t *testing.T) {
	cases := []struct {
		in           string
		queue, eval1 float64
	}{
		{"queue;dur=0.0123, eval;dur=0.4567", 0.0123, 0.4567},
		{"queue;dur=1.5", 1.5, 0},
		{"eval;dur=2", 0, 2},
		{"", 0, 0},
		{"db;dur=9, queue;dur=0.25, eval;dur=0.5", 0.25, 0.5},
		{"queue; dur=0.25 , eval;desc=\"x\";dur=0.5", 0.25, 0.5},
		{"queue;dur=bogus", 0, 0},
		{"garbage", 0, 0},
	}
	for _, c := range cases {
		q, e := parseServerTiming(c.in)
		if q != c.queue || e != c.eval1 {
			t.Errorf("parseServerTiming(%q) = (%g, %g), want (%g, %g)", c.in, q, e, c.queue, c.eval1)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(sorted, 0.5); q != 5 {
		t.Errorf("p50 = %g", q)
	}
	if q := quantile(sorted, 0.99); q != 10 {
		t.Errorf("p99 = %g", q)
	}
	if q := quantile(sorted[:1], 0.5); q != 1 {
		t.Errorf("single-element p50 = %g", q)
	}
}
