// Command loadgen is a closed-loop load generator for cmd/serve: N
// workers each issue one request at a time over keep-alive connections
// for a fixed duration, then the tool reports achieved QPS and latency
// quantiles — the measurement behind the serving-throughput acceptance
// numbers in README.md.
//
// Usage:
//
//	go run ./cmd/serve -checkpoint agent.json -addr :8080 &
//	go run ./cmd/loadgen -url http://localhost:8080 -duration 5s -concurrency 16
//
// The probe state defaults to a zero vector of the served model's input
// size (discovered via /v1/info); -state overrides it with comma-
// separated floats. Any non-2xx response or transport error counts as an
// error, and the exit code is non-zero if any occurred (or if nothing
// succeeded), so CI can assert a healthy server with one command.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type report struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	Endpoint   string  `json:"endpoint"`
	Concurrent int     `json:"concurrency"`
}

func main() { os.Exit(run()) }

func run() int {
	base := flag.String("url", "http://localhost:8080", "base URL of cmd/serve")
	endpoint := flag.String("endpoint", "/v1/predict", "endpoint to hammer (/v1/predict or /v1/act)")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	concurrency := flag.Int("concurrency", 16, "closed-loop workers")
	stateFlag := flag.String("state", "", "comma-separated probe state (default: zeros sized via /v1/info)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	flag.Parse()

	state, err := probeState(*base, *stateFlag)
	if err != nil {
		return fail(err)
	}
	body, err := json.Marshal(map[string][]float64{"state": state})
	if err != nil {
		return fail(err)
	}
	url := strings.TrimRight(*base, "/") + *endpoint

	tr := &http.Transport{
		MaxIdleConns:        *concurrency,
		MaxIdleConnsPerHost: *concurrency,
	}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	type workerResult struct {
		lat  []float64 // milliseconds
		errs int
	}
	results := make([]workerResult, *concurrency)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					res.errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					res.errs++
					continue
				}
				res.lat = append(res.lat, float64(time.Since(t0))/float64(time.Millisecond))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lats []float64
	errs := 0
	for _, r := range results {
		lats = append(lats, r.lat...)
		errs += r.errs
	}
	sort.Float64s(lats)
	rep := report{
		Requests:   len(lats),
		Errors:     errs,
		Seconds:    elapsed,
		Endpoint:   *endpoint,
		Concurrent: *concurrency,
	}
	if elapsed > 0 {
		rep.QPS = float64(len(lats)) / elapsed
	}
	if len(lats) > 0 {
		rep.P50MS = quantile(lats, 0.50)
		rep.P95MS = quantile(lats, 0.95)
		rep.P99MS = quantile(lats, 0.99)
		rep.MaxMS = lats[len(lats)-1]
	}

	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(rep)
	} else {
		fmt.Printf("loadgen: %d requests in %.2fs (%d errors), %.0f req/s\n",
			rep.Requests, rep.Seconds, rep.Errors, rep.QPS)
		fmt.Printf("latency ms: p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	}
	if errs > 0 || len(lats) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (errors or no successful requests)")
		return 1
	}
	return 0
}

// probeState parses -state, or asks /v1/info for the model's input size
// and returns a zero vector.
func probeState(base, flagVal string) ([]float64, error) {
	if flagVal != "" {
		parts := strings.Split(flagVal, ",")
		state := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: -state: %w", err)
			}
			state[i] = v
		}
		return state, nil
	}
	resp, err := http.Get(strings.TrimRight(base, "/") + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("loadgen: querying /v1/info: %w", err)
	}
	defer resp.Body.Close()
	var info struct {
		ObservationSize int `json:"observation_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/info: %w", err)
	}
	if info.ObservationSize <= 0 {
		return nil, fmt.Errorf("loadgen: /v1/info reports observation_size %d", info.ObservationSize)
	}
	return make([]float64, info.ObservationSize), nil
}

// quantile returns the p-quantile of sorted values by nearest-rank.
func quantile(sorted []float64, p float64) float64 {
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err.Error())
	return 1
}
