// Command loadgen is a closed-loop load generator for cmd/serve: N
// workers each issue one request at a time over keep-alive connections
// for a fixed duration, then the tool reports achieved QPS and latency
// quantiles — the measurement behind the serving-throughput acceptance
// numbers in README.md.
//
// Usage:
//
//	go run ./cmd/serve -checkpoint agent.json -addr :8080 &
//	go run ./cmd/loadgen -url http://localhost:8080 -duration 5s -concurrency 16
//
// The probe state defaults to a zero vector of the served model's input
// size (discovered via /v1/info); -state overrides it with comma-
// separated floats. Any non-2xx response or transport error counts as an
// error, and the exit code is non-zero if any occurred (or if nothing
// succeeded), so CI can assert a healthy server with one command.
//
// With -slo the tool additionally replays the traffic through a
// client-side burn-rate engine (internal/obs/slo): every response is
// classified (200 OK, 400 client error, 429 shed, transport error
// timeout), the server's Server-Timing header splits each latency into
// queue-wait and evaluator components, and the report carries the full
// SLO evaluation — quantiles per component, 5m/1h burn rates, and the
// overall budget verdict. The exit code then gates on the objectives: a
// run that as a whole burned more than its error budget exits nonzero,
// making `loadgen -slo` a one-command serving-SLO check for CI:
//
//	go run ./cmd/loadgen -slo -duration 5s -slo-out slo-report.json
//	go run ./cmd/loadgen -slo -slo-p99 0.0001 ...   # forced breach demo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"oselmrl/internal/obs/slo"
)

type report struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Shed       int     `json:"shed,omitempty"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	Endpoint   string  `json:"endpoint"`
	Concurrent int     `json:"concurrency"`
	// SLO and SLOBreaches are present with -slo: the client-side burn-rate
	// evaluation and the objectives whose overall burn reached 1.
	SLO         *slo.Report `json:"slo,omitempty"`
	SLOBreaches []string    `json:"slo_breaches,omitempty"`
}

func main() { os.Exit(run()) }

func run() int {
	base := flag.String("url", "http://localhost:8080", "base URL of cmd/serve")
	endpoint := flag.String("endpoint", "/v1/predict", "endpoint to hammer (/v1/predict or /v1/act)")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	concurrency := flag.Int("concurrency", 16, "closed-loop workers")
	stateFlag := flag.String("state", "", "comma-separated probe state (default: zeros sized via /v1/info)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	sloOn := flag.Bool("slo", false, "evaluate serving SLOs client-side and gate the exit code on them")
	sloP99 := flag.Float64("slo-p99", 100, "latency objective: p99 total latency in ms (with -slo; 0 disables)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective (with -slo; 0 disables)")
	sloOut := flag.String("slo-out", "", "with -slo: also write the full JSON report to this file (the CI artifact)")
	flag.Parse()

	var eng *slo.Engine
	if *sloOn {
		eng = slo.NewEngine(slo.Objectives{LatencyP99MS: *sloP99, Availability: *sloAvail})
	}

	state, err := probeState(*base, *stateFlag)
	if err != nil {
		return fail(err)
	}
	body, err := json.Marshal(map[string][]float64{"state": state})
	if err != nil {
		return fail(err)
	}
	url := strings.TrimRight(*base, "/") + *endpoint

	tr := &http.Transport{
		MaxIdleConns:        *concurrency,
		MaxIdleConnsPerHost: *concurrency,
	}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	type workerResult struct {
		lat  []float64 // milliseconds
		errs int
		shed int
	}
	results := make([]workerResult, *concurrency)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			for time.Now().Before(deadline) {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				totalMS := float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil {
					// Transport errors are unavailability from the caller's
					// seat — the SLO engine books them as timeouts.
					res.errs++
					eng.Record(slo.Timeout, 0, 0, totalMS)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				queueMS, evalMS := parseServerTiming(resp.Header.Get("Server-Timing"))
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					eng.Record(slo.OK, queueMS, evalMS, totalMS)
					res.lat = append(res.lat, totalMS)
				case resp.StatusCode == http.StatusTooManyRequests:
					// Shedding is backpressure, not breakage: with -slo it
					// consumes availability budget instead of failing the run
					// outright.
					res.shed++
					eng.Record(slo.Shed, queueMS, 0, totalMS)
					if eng == nil {
						res.errs++
					}
				case resp.StatusCode == http.StatusBadRequest:
					res.errs++
					eng.Record(slo.ClientError, queueMS, evalMS, totalMS)
				default:
					res.errs++
					eng.Record(slo.Timeout, queueMS, 0, totalMS)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lats []float64
	errs, shed := 0, 0
	for _, r := range results {
		lats = append(lats, r.lat...)
		errs += r.errs
		shed += r.shed
	}
	sort.Float64s(lats)
	rep := report{
		Requests:   len(lats),
		Errors:     errs,
		Shed:       shed,
		Seconds:    elapsed,
		Endpoint:   *endpoint,
		Concurrent: *concurrency,
	}
	if elapsed > 0 {
		rep.QPS = float64(len(lats)) / elapsed
	}
	if len(lats) > 0 {
		rep.P50MS = quantile(lats, 0.50)
		rep.P95MS = quantile(lats, 0.95)
		rep.P99MS = quantile(lats, 0.99)
		rep.MaxMS = lats[len(lats)-1]
	}
	if eng != nil {
		sloRep := eng.Report()
		rep.SLO = &sloRep
		rep.SLOBreaches = slo.GateBreaches(sloRep)
	}

	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(rep)
	} else {
		fmt.Printf("loadgen: %d requests in %.2fs (%d errors, %d shed), %.0f req/s\n",
			rep.Requests, rep.Seconds, rep.Errors, rep.Shed, rep.QPS)
		fmt.Printf("latency ms: p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
			rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
		if rep.SLO != nil {
			printSLO(rep.SLO)
		}
	}
	if *sloOut != "" && rep.SLO != nil {
		if err := writeJSONFile(*sloOut, rep); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: slo report written to %s\n", *sloOut)
	}

	if eng != nil {
		// SLO mode gates on the objectives, not on raw error counts:
		// the run fails when some objective's overall burn reached 1 or
		// nothing succeeded at all.
		if len(rep.SLOBreaches) > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: SLO FAILED (breached: %s)\n", strings.Join(rep.SLOBreaches, ", "))
			return 1
		}
		if len(lats) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: FAILED (no successful requests)")
			return 1
		}
		fmt.Fprintln(os.Stderr, "loadgen: SLO OK")
		return 0
	}
	if errs > 0 || len(lats) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (errors or no successful requests)")
		return 1
	}
	return 0
}

// printSLO renders the burn-rate evaluation for humans: the latency
// split quantiles (the Server-Timing decomposition) and each objective's
// burn on the 5m window and over the whole run.
func printSLO(r *slo.Report) {
	fmt.Printf("slo: %d ok, %d client errors, %d shed, %d timeouts, %d slow\n",
		r.OK, r.ClientErrors, r.Shed, r.Timeouts, r.SlowRequests)
	for _, d := range []struct {
		name string
		dist slo.Dist
	}{{"total", r.TotalMS}, {"queue", r.QueueMS}, {"eval", r.EvalMS}} {
		fmt.Printf("slo: %-5s ms p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			d.name, d.dist.P50MS, d.dist.P95MS, d.dist.P99MS, d.dist.MaxMS)
	}
	printBurn := func(name string, w5, all *slo.Burn) {
		if w5 == nil || all == nil {
			return
		}
		fmt.Printf("slo: %-12s burn 5m=%.3f overall=%.3f (bad %d/%d)\n",
			name, w5.Rate, all.Rate, all.Bad, all.Requests)
	}
	printBurn("latency", r.Window5m.Latency, r.Overall.Latency)
	printBurn("availability", r.Window5m.Availability, r.Overall.Availability)
}

// parseServerTiming extracts the queue and eval components from the
// serving path's Server-Timing header ("queue;dur=0.0123, eval;dur=0.4").
// Absent or malformed metrics yield zeros.
func parseServerTiming(h string) (queueMS, evalMS float64) {
	for _, part := range strings.Split(h, ",") {
		fields := strings.Split(strings.TrimSpace(part), ";")
		if len(fields) < 2 {
			continue
		}
		name := strings.TrimSpace(fields[0])
		for _, attr := range fields[1:] {
			attr = strings.TrimSpace(attr)
			if !strings.HasPrefix(attr, "dur=") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimPrefix(attr, "dur="), 64)
			if err != nil {
				continue
			}
			switch name {
			case "queue":
				queueMS = v
			case "eval":
				evalMS = v
			}
		}
	}
	return queueMS, evalMS
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// probeState parses -state, or asks /v1/info for the model's input size
// and returns a zero vector.
func probeState(base, flagVal string) ([]float64, error) {
	if flagVal != "" {
		parts := strings.Split(flagVal, ",")
		state := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: -state: %w", err)
			}
			state[i] = v
		}
		return state, nil
	}
	resp, err := http.Get(strings.TrimRight(base, "/") + "/v1/info")
	if err != nil {
		return nil, fmt.Errorf("loadgen: querying /v1/info: %w", err)
	}
	defer resp.Body.Close()
	var info struct {
		ObservationSize int `json:"observation_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/info: %w", err)
	}
	if info.ObservationSize <= 0 {
		return nil, fmt.Errorf("loadgen: /v1/info reports observation_size %d", info.ObservationSize)
	}
	return make([]float64, info.ObservationSize), nil
}

// quantile returns the p-quantile of sorted values by nearest-rank.
func quantile(sorted []float64, p float64) float64 {
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err.Error())
	return 1
}
