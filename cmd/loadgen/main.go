// Command loadgen is a closed-loop load generator for cmd/serve: N
// workers each issue one request at a time over keep-alive connections
// for a fixed duration, then the tool reports achieved QPS and latency
// quantiles — the measurement behind the serving-throughput acceptance
// numbers in README.md.
//
// Usage:
//
//	go run ./cmd/serve -checkpoint agent.json -addr :8080 &
//	go run ./cmd/loadgen -url http://localhost:8080 -duration 5s -concurrency 16
//
// The probe state defaults to a zero vector of the served model's input
// size (discovered via /v1/info); -state overrides it with comma-
// separated floats. Any non-2xx response or transport error counts as an
// error, and the exit code is non-zero if any occurred (or if nothing
// succeeded), so CI can assert a healthy server with one command.
//
// Multi-tenant runs: -tenants alpha,beta round-robins requests across
// /v1/t/{name}/ routes (each tenant's state probed via its own /v1/info)
// and the report carries per-tenant request counts.
//
// A/B runs: -ab URL2 measures the same workload twice — first against
// -url (label "unbatched"), then against URL2 (label "batched") — and
// prints the throughput and p99 deltas. -ab-out writes the pair as a
// cmd/bench-compatible BENCH snapshot (rows ServeAB/<label>/throughput
// and ServeAB/<label>/p99), so `cmd/bench -compare` and CI thresholds
// work on serving A/Bs exactly as on Go benchmarks. This is how the
// micro-batching acceptance numbers (BENCH_4.json) were produced.
//
// With -slo the tool additionally replays the traffic through a
// client-side burn-rate engine (internal/obs/slo): every response is
// classified (200 OK, 400 client error, 429 shed, transport error
// timeout), the server's Server-Timing header splits each latency into
// queue-wait and evaluator components, and the report carries the full
// SLO evaluation — quantiles per component, 5m/1h burn rates, and the
// overall budget verdict. The exit code then gates on the objectives: a
// run that as a whole burned more than its error budget exits nonzero,
// making `loadgen -slo` a one-command serving-SLO check for CI:
//
//	go run ./cmd/loadgen -slo -duration 5s -slo-out slo-report.json
//	go run ./cmd/loadgen -slo -slo-p99 0.0001 ...   # forced breach demo
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"oselmrl/internal/obs/slo"
)

type report struct {
	Requests   int     `json:"requests"`
	Errors     int     `json:"errors"`
	Shed       int     `json:"shed,omitempty"`
	Seconds    float64 `json:"seconds"`
	QPS        float64 `json:"qps"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`
	Endpoint   string  `json:"endpoint"`
	Concurrent int     `json:"concurrency"`
	// Tenants is the per-tenant successful-request split with -tenants.
	Tenants map[string]int `json:"tenants,omitempty"`
	// SLO and SLOBreaches are present with -slo: the client-side burn-rate
	// evaluation and the objectives whose overall burn reached 1.
	SLO         *slo.Report `json:"slo,omitempty"`
	SLOBreaches []string    `json:"slo_breaches,omitempty"`
}

// target is one (URL, body) pair the workers cycle through — one per
// tenant, or a single bare-route target without -tenants.
type target struct {
	tenant string
	url    string
	body   []byte
}

func main() { os.Exit(run()) }

func run() int {
	base := flag.String("url", "http://localhost:8080", "base URL of cmd/serve")
	endpoint := flag.String("endpoint", "/v1/predict", "endpoint to hammer (/v1/predict or /v1/act)")
	tenantsFlag := flag.String("tenants", "", "comma-separated tenant names to round-robin via /v1/t/{name}/ routes")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	concurrency := flag.Int("concurrency", 16, "closed-loop workers")
	stateFlag := flag.String("state", "", "comma-separated probe state (default: zeros sized via /v1/info)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	abURL := flag.String("ab", "", "second base URL: run the workload against -url then this, report the deltas")
	abOut := flag.String("ab-out", "", "with -ab: write both passes as a cmd/bench-compatible snapshot to this file")
	abLabels := flag.String("ab-labels", "unbatched,batched", "with -ab: labels for the -url and -ab passes")
	sloOn := flag.Bool("slo", false, "evaluate serving SLOs client-side and gate the exit code on them")
	sloP99 := flag.Float64("slo-p99", 100, "latency objective: p99 total latency in ms (with -slo; 0 disables)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective (with -slo; 0 disables)")
	sloOut := flag.String("slo-out", "", "with -slo: also write the full JSON report to this file (the CI artifact)")
	flag.Parse()

	if *abURL != "" && *sloOn {
		fmt.Fprintln(os.Stderr, "loadgen: -ab and -slo are mutually exclusive (A/B is a throughput measurement)")
		return 2
	}
	labelA, labelB, ok := strings.Cut(*abLabels, ",")
	if *abURL != "" && (!ok || labelA == "" || labelB == "") {
		fmt.Fprintln(os.Stderr, "loadgen: -ab-labels wants two comma-separated names")
		return 2
	}

	var tenants []string
	if *tenantsFlag != "" {
		for _, name := range strings.Split(*tenantsFlag, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				fmt.Fprintln(os.Stderr, "loadgen: -tenants has an empty name")
				return 2
			}
			tenants = append(tenants, name)
		}
	}

	var eng *slo.Engine
	if *sloOn {
		eng = slo.NewEngine(slo.Objectives{LatencyP99MS: *sloP99, Availability: *sloAvail})
	}

	client := newClient(*concurrency)
	targets, err := buildTargets(client, *base, *endpoint, tenants, *stateFlag)
	if err != nil {
		return fail(err)
	}
	rep := runPass(client, targets, *duration, *concurrency, eng)
	rep.Endpoint = *endpoint

	if *abURL != "" {
		// Re-probe against the B server: it may serve a different model.
		targetsB, err := buildTargets(client, *abURL, *endpoint, tenants, *stateFlag)
		if err != nil {
			return fail(err)
		}
		repB := runPass(client, targetsB, *duration, *concurrency, eng)
		repB.Endpoint = *endpoint
		printReport(labelA+": ", rep)
		printReport(labelB+": ", repB)
		printABDelta(labelA, labelB, rep, repB)
		if *abOut != "" {
			snap := abSnapshot(labelA, labelB, rep, repB, *duration)
			if err := writeJSONFile(*abOut, snap); err != nil {
				return fail(err)
			}
			fmt.Fprintf(os.Stderr, "loadgen: A/B snapshot written to %s\n", *abOut)
		}
		if rep.Errors > 0 || repB.Errors > 0 || rep.Requests == 0 || repB.Requests == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: FAILED (errors or no successful requests in a pass)")
			return 1
		}
		return 0
	}

	if eng != nil {
		sloRep := eng.Report()
		rep.SLO = &sloRep
		rep.SLOBreaches = slo.GateBreaches(sloRep)
	}

	if *jsonOut {
		json.NewEncoder(os.Stdout).Encode(rep)
	} else {
		printReport("", rep)
		if rep.SLO != nil {
			printSLO(rep.SLO)
		}
	}
	if *sloOut != "" && rep.SLO != nil {
		if err := writeJSONFile(*sloOut, rep); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: slo report written to %s\n", *sloOut)
	}

	if eng != nil {
		// SLO mode gates on the objectives, not on raw error counts:
		// the run fails when some objective's overall burn reached 1 or
		// nothing succeeded at all.
		if len(rep.SLOBreaches) > 0 {
			fmt.Fprintf(os.Stderr, "loadgen: SLO FAILED (breached: %s)\n", strings.Join(rep.SLOBreaches, ", "))
			return 1
		}
		if rep.Requests == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: FAILED (no successful requests)")
			return 1
		}
		fmt.Fprintln(os.Stderr, "loadgen: SLO OK")
		return 0
	}
	if rep.Errors > 0 || rep.Requests == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (errors or no successful requests)")
		return 1
	}
	return 0
}

func newClient(concurrency int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        concurrency,
		MaxIdleConnsPerHost: concurrency,
	}
	return &http.Client{Transport: tr, Timeout: 10 * time.Second}
}

// buildTargets resolves the (URL, body) pair per tenant: the probe state
// comes from -state or each tenant's own /v1/info (tenants may serve
// models of different input sizes).
func buildTargets(client *http.Client, base, endpoint string, tenants []string, stateFlag string) ([]target, error) {
	prefixes := []string{""}
	names := []string{""}
	if len(tenants) > 0 {
		prefixes = prefixes[:0]
		names = tenants
		for _, name := range tenants {
			prefixes = append(prefixes, "/t/"+name)
		}
	}
	targets := make([]target, 0, len(prefixes))
	for i, prefix := range prefixes {
		infoURL := strings.TrimRight(base, "/") + "/v1" + prefix + "/info"
		state, err := probeState(client, infoURL, stateFlag)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(map[string][]float64{"state": state})
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{
			tenant: names[i],
			url:    strings.TrimRight(base, "/") + "/v1" + prefix + strings.TrimPrefix(endpoint, "/v1"),
			body:   body,
		})
	}
	return targets, nil
}

// runPass drives the closed loop for one measurement window: every
// worker cycles through the targets round-robin (offset by worker index,
// so tenants are hit evenly even with few workers) and classifies each
// response.
func runPass(client *http.Client, targets []target, duration time.Duration, concurrency int, eng *slo.Engine) report {
	type workerResult struct {
		lat      []float64 // milliseconds
		errs     int
		shed     int
		byTarget []int // successful requests per target index
	}
	results := make([]workerResult, concurrency)
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.byTarget = make([]int, len(targets))
			for i := w; time.Now().Before(deadline); i++ {
				tgt := targets[i%len(targets)]
				t0 := time.Now()
				resp, err := client.Post(tgt.url, "application/json", bytes.NewReader(tgt.body))
				totalMS := float64(time.Since(t0)) / float64(time.Millisecond)
				if err != nil {
					// Transport errors are unavailability from the caller's
					// seat — the SLO engine books them as timeouts.
					res.errs++
					eng.Record(slo.Timeout, 0, 0, totalMS)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				queueMS, evalMS := parseServerTiming(resp.Header.Get("Server-Timing"))
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					eng.Record(slo.OK, queueMS, evalMS, totalMS)
					res.lat = append(res.lat, totalMS)
					res.byTarget[i%len(targets)]++
				case resp.StatusCode == http.StatusTooManyRequests:
					// Shedding is backpressure, not breakage: with -slo it
					// consumes availability budget instead of failing the run
					// outright.
					res.shed++
					eng.Record(slo.Shed, queueMS, 0, totalMS)
					if eng == nil {
						res.errs++
					}
				case resp.StatusCode == http.StatusBadRequest:
					res.errs++
					eng.Record(slo.ClientError, queueMS, evalMS, totalMS)
				default:
					res.errs++
					eng.Record(slo.Timeout, queueMS, 0, totalMS)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var lats []float64
	errs, shed := 0, 0
	perTarget := make([]int, len(targets))
	for _, r := range results {
		lats = append(lats, r.lat...)
		errs += r.errs
		shed += r.shed
		for i, n := range r.byTarget {
			perTarget[i] += n
		}
	}
	sort.Float64s(lats)
	rep := report{
		Requests:   len(lats),
		Errors:     errs,
		Shed:       shed,
		Seconds:    elapsed,
		Concurrent: concurrency,
	}
	if len(targets) > 1 || targets[0].tenant != "" {
		rep.Tenants = make(map[string]int, len(targets))
		for i, tgt := range targets {
			rep.Tenants[tgt.tenant] = perTarget[i]
		}
	}
	if elapsed > 0 {
		rep.QPS = float64(len(lats)) / elapsed
	}
	if len(lats) > 0 {
		rep.P50MS = quantile(lats, 0.50)
		rep.P95MS = quantile(lats, 0.95)
		rep.P99MS = quantile(lats, 0.99)
		rep.MaxMS = lats[len(lats)-1]
	}
	return rep
}

func printReport(prefix string, rep report) {
	fmt.Printf("%sloadgen: %d requests in %.2fs (%d errors, %d shed), %.0f req/s\n",
		prefix, rep.Requests, rep.Seconds, rep.Errors, rep.Shed, rep.QPS)
	fmt.Printf("%slatency ms: p50=%.3f p95=%.3f p99=%.3f max=%.3f\n",
		prefix, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	if len(rep.Tenants) > 0 {
		names := make([]string, 0, len(rep.Tenants))
		for name := range rep.Tenants {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, rep.Tenants[name]))
		}
		fmt.Printf("%sper tenant: %s\n", prefix, strings.Join(parts, " "))
	}
}

// printABDelta summarizes pass B relative to pass A: positive throughput
// delta and non-positive p99 delta is the micro-batching win condition.
func printABDelta(labelA, labelB string, a, b report) {
	pct := func(oldV, newV float64) float64 {
		if oldV == 0 {
			return 0
		}
		return (newV - oldV) / oldV * 100
	}
	fmt.Printf("A/B (%s -> %s): throughput %+0.1f%% (%.0f -> %.0f req/s), p99 %+0.1f%% (%.3f -> %.3f ms)\n",
		labelA, labelB, pct(a.QPS, b.QPS), a.QPS, b.QPS, pct(a.P99MS, b.P99MS), a.P99MS, b.P99MS)
}

// benchResult and benchSnapshot mirror cmd/bench's BENCH_<n>.json schema
// so A/B snapshots compare with `cmd/bench -compare` and live next to the
// Go-benchmark history at the repo root.
type benchResult struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type benchSnapshot struct {
	GitSHA    string        `json:"git_sha"`
	GoVersion string        `json:"go_version"`
	Platform  string        `json:"platform"`
	Time      string        `json:"time"`
	Benchtime string        `json:"benchtime"`
	Packages  []string      `json:"packages"`
	Results   []benchResult `json:"results"`
}

// abSnapshot converts an A/B pair into bench rows: throughput rows carry
// the mean inter-completion time (1e9/QPS ns — lower is faster, matching
// bench semantics), p99 rows carry the tail latency in ns.
func abSnapshot(labelA, labelB string, a, b report, duration time.Duration) benchSnapshot {
	rows := func(label string, r report) []benchResult {
		out := []benchResult{}
		if r.QPS > 0 {
			out = append(out, benchResult{
				Name:       "ServeAB/" + label + "/throughput",
				Iterations: int64(r.Requests),
				NsPerOp:    1e9 / r.QPS,
			})
		}
		out = append(out,
			benchResult{Name: "ServeAB/" + label + "/p50", Iterations: int64(r.Requests), NsPerOp: r.P50MS * 1e6},
			benchResult{Name: "ServeAB/" + label + "/p99", Iterations: int64(r.Requests), NsPerOp: r.P99MS * 1e6},
		)
		return out
	}
	return benchSnapshot{
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Time:      time.Now().UTC().Format(time.RFC3339),
		Benchtime: duration.String(),
		Packages:  []string{"cmd/loadgen A/B"},
		Results:   append(rows(labelA, a), rows(labelB, b)...),
	}
}

// gitSHA returns the current HEAD commit, or "unknown" outside a checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// printSLO renders the burn-rate evaluation for humans: the latency
// split quantiles (the Server-Timing decomposition) and each objective's
// burn on the 5m window and over the whole run.
func printSLO(r *slo.Report) {
	fmt.Printf("slo: %d ok, %d client errors, %d shed, %d timeouts, %d slow\n",
		r.OK, r.ClientErrors, r.Shed, r.Timeouts, r.SlowRequests)
	for _, d := range []struct {
		name string
		dist slo.Dist
	}{{"total", r.TotalMS}, {"queue", r.QueueMS}, {"eval", r.EvalMS}} {
		fmt.Printf("slo: %-5s ms p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			d.name, d.dist.P50MS, d.dist.P95MS, d.dist.P99MS, d.dist.MaxMS)
	}
	printBurn := func(name string, w5, all *slo.Burn) {
		if w5 == nil || all == nil {
			return
		}
		fmt.Printf("slo: %-12s burn 5m=%.3f overall=%.3f (bad %d/%d)\n",
			name, w5.Rate, all.Rate, all.Bad, all.Requests)
	}
	printBurn("latency", r.Window5m.Latency, r.Overall.Latency)
	printBurn("availability", r.Window5m.Availability, r.Overall.Availability)
}

// parseServerTiming extracts the queue and eval components from the
// serving path's Server-Timing header ("queue;dur=0.0123, eval;dur=0.4").
// Absent or malformed metrics yield zeros.
func parseServerTiming(h string) (queueMS, evalMS float64) {
	for _, part := range strings.Split(h, ",") {
		fields := strings.Split(strings.TrimSpace(part), ";")
		if len(fields) < 2 {
			continue
		}
		name := strings.TrimSpace(fields[0])
		for _, attr := range fields[1:] {
			attr = strings.TrimSpace(attr)
			if !strings.HasPrefix(attr, "dur=") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimPrefix(attr, "dur="), 64)
			if err != nil {
				continue
			}
			switch name {
			case "queue":
				queueMS = v
			case "eval":
				evalMS = v
			}
		}
	}
	return queueMS, evalMS
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// probeState parses -state, or asks the given /v1/info route for the
// model's input size and returns a zero vector.
func probeState(client *http.Client, infoURL, flagVal string) ([]float64, error) {
	if flagVal != "" {
		parts := strings.Split(flagVal, ",")
		state := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("loadgen: -state: %w", err)
			}
			state[i] = v
		}
		return state, nil
	}
	resp, err := client.Get(infoURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: querying %s: %w", infoURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: %s: HTTP %d", infoURL, resp.StatusCode)
	}
	var info struct {
		ObservationSize int `json:"observation_size"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("loadgen: decoding %s: %w", infoURL, err)
	}
	if info.ObservationSize <= 0 {
		return nil, fmt.Errorf("loadgen: %s reports observation_size %d", infoURL, info.ObservationSize)
	}
	return make([]float64, info.ObservationSize), nil
}

// quantile returns the p-quantile of sorted values by nearest-rank.
func quantile(sorted []float64, p float64) float64 {
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, err.Error())
	return 1
}
