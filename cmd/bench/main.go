// Command bench runs the repo's Go benchmarks and records the results as
// a numbered BENCH_<n>.json snapshot at the repo root — the start of a
// perf trajectory: each run appends the next file in the sequence, so
// regressions show up as a diff between consecutive snapshots rather than
// a vague recollection of "it used to be faster".
//
// It shells out to the standard benchmark runner (`go test -bench`),
// parses the textual output, and stamps the snapshot with the git commit
// and Go version that produced it.
//
// Usage:
//
//	go run ./cmd/bench                            # full suite, next BENCH_<n>.json
//	go run ./cmd/bench -bench 'Kernel' -benchtime 100x
//	go run ./cmd/bench -pkg ./... -benchtime 1x -o smoke/bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	// Name is the full benchmark name including the -cpu suffix
	// (e.g. "BenchmarkGEMM/64x64-8").
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem reported them.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the BENCH_<n>.json document.
type Snapshot struct {
	// GitSHA identifies the commit the benchmarks ran against ("unknown"
	// outside a git checkout or with a dirty index the SHA still refers to
	// HEAD).
	GitSHA string `json:"git_sha"`
	// GoVersion and GOOS/GOARCH pin the toolchain and platform.
	GoVersion string `json:"go_version"`
	Platform  string `json:"platform"`
	// Time is the RFC3339 timestamp of the run.
	Time string `json:"time"`
	// Benchtime and Packages record how the suite was invoked.
	Benchtime string        `json:"benchtime"`
	Packages  []string      `json:"packages"`
	Results   []BenchResult `json:"results"`
}

func main() { os.Exit(run()) }

func run() int {
	benchPat := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
	pkgs := flag.String("pkg", ".", "comma-separated package patterns to benchmark")
	outPath := flag.String("o", "", "output file (default: next BENCH_<n>.json in -dir)")
	dir := flag.String("dir", ".", "directory for auto-numbered snapshots")
	flag.Parse()

	pkgList := strings.Split(*pkgs, ",")
	args := append([]string{"test", "-run", "^$", "-bench", *benchPat,
		"-benchtime", *benchtime, "-benchmem"}, pkgList...)
	fmt.Fprintln(os.Stderr, "bench: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	// The raw runner output streams to stderr-adjacent visibility via the
	// parsed summary below; on failure show what we got before bailing.
	if err != nil {
		os.Stderr.Write(out)
		fmt.Fprintln(os.Stderr, "bench: go test -bench failed:", err)
		return 1
	}

	results := parseBench(string(out))
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results in the output")
		os.Stderr.Write(out)
		return 1
	}

	snap := Snapshot{
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Time:      time.Now().UTC().Format(time.RFC3339),
		Benchtime: *benchtime,
		Packages:  pkgList,
		Results:   results,
	}

	path := *outPath
	if path == "" {
		path, err = nextSnapshotPath(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	fmt.Printf("bench: %d benchmarks @ %s written to %s\n", len(results), snap.GitSHA, path)
	return 0
}

// benchLine matches the standard benchmark result format:
//
//	BenchmarkName-8   \t  123  \t  456.7 ns/op  \t  89 B/op  \t  1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBench extracts results from `go test -bench` textual output. Lines
// that are not benchmark results (pkg headers, PASS/ok, sub-benchmark
// logs) are skipped.
func parseBench(out string) []BenchResult {
	var results []BenchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: m[1], Iterations: iters}
		// The tail is value/unit pairs: "456.7 ns/op 89 B/op 1 allocs/op".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	return results
}

// gitSHA returns the current HEAD commit, or "unknown" outside a checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// nextSnapshotPath finds the first unused BENCH_<n>.json index in dir,
// continuing the sequence after the highest existing snapshot.
func nextSnapshotPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		if err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}
