// Command bench runs the repo's Go benchmarks and records the results as
// a numbered BENCH_<n>.json snapshot at the repo root — the start of a
// perf trajectory: each run appends the next file in the sequence, so
// regressions show up as a diff between consecutive snapshots rather than
// a vague recollection of "it used to be faster".
//
// It shells out to the standard benchmark runner (`go test -bench`),
// parses the textual output, and stamps the snapshot with the git commit
// and Go version that produced it.
//
// Usage:
//
//	go run ./cmd/bench                            # full suite, next BENCH_<n>.json
//	go run ./cmd/bench -bench 'Kernel' -benchtime 100x
//	go run ./cmd/bench -pkg ./... -benchtime 1x -o smoke/bench.json
//
// Comparison mode renders a benchstat-style delta table between two
// snapshots and optionally enforces a regression budget (flags before
// the positional files — flag parsing stops at the first filename):
//
//	go run ./cmd/bench -compare BENCH_2.json BENCH_3.json
//	go run ./cmd/bench -compare -threshold 25 BENCH_2.json new.json   # fail >25% slower
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"oselmrl/internal/vcs"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	// Name is the full benchmark name including the -cpu suffix
	// (e.g. "BenchmarkGEMM/64x64-8").
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when -benchmem reported them.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the BENCH_<n>.json document.
type Snapshot struct {
	// GitSHA identifies the commit the benchmarks ran against ("unknown"
	// outside a git checkout or with a dirty index the SHA still refers to
	// HEAD).
	GitSHA string `json:"git_sha"`
	// GoVersion and GOOS/GOARCH pin the toolchain and platform.
	GoVersion string `json:"go_version"`
	Platform  string `json:"platform"`
	// Time is the RFC3339 timestamp of the run.
	Time string `json:"time"`
	// Benchtime and Packages record how the suite was invoked.
	Benchtime string        `json:"benchtime"`
	Packages  []string      `json:"packages"`
	Results   []BenchResult `json:"results"`
}

func main() { os.Exit(run()) }

func run() int {
	benchPat := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	benchtime := flag.String("benchtime", "1x", "per-benchmark budget (go test -benchtime)")
	pkgs := flag.String("pkg", ".", "comma-separated package patterns to benchmark")
	outPath := flag.String("o", "", "output file (default: next BENCH_<n>.json in -dir)")
	dir := flag.String("dir", ".", "directory for auto-numbered snapshots")
	compare := flag.Bool("compare", false, "compare two snapshots (old.json new.json as positional args) instead of running benchmarks")
	threshold := flag.Float64("threshold", 0, "with -compare: max tolerated ns/op regression in percent; exceeding it exits nonzero (0 = report only)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two snapshot files: old.json new.json")
			return 2
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *threshold)
	}

	pkgList := strings.Split(*pkgs, ",")
	args := append([]string{"test", "-run", "^$", "-bench", *benchPat,
		"-benchtime", *benchtime, "-benchmem"}, pkgList...)
	fmt.Fprintln(os.Stderr, "bench: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	// The raw runner output streams to stderr-adjacent visibility via the
	// parsed summary below; on failure show what we got before bailing.
	if err != nil {
		os.Stderr.Write(out)
		fmt.Fprintln(os.Stderr, "bench: go test -bench failed:", err)
		return 1
	}

	results := parseBench(string(out))
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark results in the output")
		os.Stderr.Write(out)
		return 1
	}

	snap := Snapshot{
		GitSHA:    vcs.SHA(),
		GoVersion: runtime.Version(),
		Platform:  runtime.GOOS + "/" + runtime.GOARCH,
		Time:      time.Now().UTC().Format(time.RFC3339),
		Benchtime: *benchtime,
		Packages:  pkgList,
		Results:   results,
	}

	path := *outPath
	if path == "" {
		path, err = nextSnapshotPath(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			return 1
		}
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	fmt.Printf("bench: %d benchmarks @ %s written to %s\n", len(results), snap.GitSHA, path)
	return 0
}

// benchDelta is one benchmark's old-vs-new comparison.
type benchDelta struct {
	Name         string
	OldNs, NewNs float64
	// Pct is the ns/op change in percent (positive = slower). NaN when
	// the benchmark is present on only one side.
	Pct float64
	// AllocDelta is the allocs/op change (absolute).
	AllocDelta float64
	// OnlyOld / OnlyNew mark benchmarks without a counterpart.
	OnlyOld, OnlyNew bool
}

// compareSnapshots matches results by full benchmark name. Matched pairs
// come first in old-snapshot order, then benchmarks present on only one
// side.
func compareSnapshots(oldSnap, newSnap Snapshot) []benchDelta {
	newByName := make(map[string]BenchResult, len(newSnap.Results))
	for _, r := range newSnap.Results {
		newByName[r.Name] = r
	}
	var deltas, unmatched []benchDelta
	seen := make(map[string]bool, len(oldSnap.Results))
	for _, o := range oldSnap.Results {
		seen[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			unmatched = append(unmatched, benchDelta{Name: o.Name, OldNs: o.NsPerOp, OnlyOld: true})
			continue
		}
		d := benchDelta{Name: o.Name, OldNs: o.NsPerOp, NewNs: n.NsPerOp,
			AllocDelta: n.AllocsPerOp - o.AllocsPerOp}
		if o.NsPerOp > 0 {
			d.Pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		deltas = append(deltas, d)
	}
	for _, n := range newSnap.Results {
		if !seen[n.Name] {
			unmatched = append(unmatched, benchDelta{Name: n.Name, NewNs: n.NsPerOp, OnlyNew: true})
		}
	}
	return append(deltas, unmatched...)
}

// regressions returns the matched deltas whose slowdown exceeds
// threshold percent (threshold > 0).
func regressions(deltas []benchDelta, threshold float64) []benchDelta {
	if threshold <= 0 {
		return nil
	}
	var out []benchDelta
	for _, d := range deltas {
		if !d.OnlyOld && !d.OnlyNew && d.Pct > threshold {
			out = append(out, d)
		}
	}
	return out
}

// formatDeltas renders the benchstat-style table.
func formatDeltas(deltas []benchDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "Δallocs")
	for _, d := range deltas {
		switch {
		case d.OnlyOld:
			fmt.Fprintf(&b, "%-44s %14.1f %14s %9s %9s\n", d.Name, d.OldNs, "-", "removed", "")
		case d.OnlyNew:
			fmt.Fprintf(&b, "%-44s %14s %14.1f %9s %9s\n", d.Name, "-", d.NewNs, "new", "")
		default:
			fmt.Fprintf(&b, "%-44s %14.1f %14.1f %+8.1f%% %+9.0f\n", d.Name, d.OldNs, d.NewNs, d.Pct, d.AllocDelta)
		}
	}
	return b.String()
}

// readSnapshot loads one BENCH_<n>.json document.
func readSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runCompare implements -compare [-threshold pct] old.json new.json.
func runCompare(oldPath, newPath string, threshold float64) int {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		return 1
	}
	deltas := compareSnapshots(oldSnap, newSnap)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmarks in either snapshot")
		return 1
	}
	fmt.Printf("bench: %s (%s) vs %s (%s)\n", oldPath, oldSnap.GitSHA, newPath, newSnap.GitSHA)
	fmt.Print(formatDeltas(deltas))
	if reg := regressions(deltas, threshold); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "bench: FAILED: %d benchmark(s) regressed more than %.1f%%:\n", len(reg), threshold)
		for _, d := range reg {
			fmt.Fprintf(os.Stderr, "  %s: %.1f -> %.1f ns/op (%+.1f%%)\n", d.Name, d.OldNs, d.NewNs, d.Pct)
		}
		return 1
	}
	if threshold > 0 {
		fmt.Printf("bench: OK, no regression beyond %.1f%%\n", threshold)
	}
	return 0
}

// benchLine matches the standard benchmark result format:
//
//	BenchmarkName-8   \t  123  \t  456.7 ns/op  \t  89 B/op  \t  1 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parseBench extracts results from `go test -bench` textual output. Lines
// that are not benchmark results (pkg headers, PASS/ok, sub-benchmark
// logs) are skipped.
func parseBench(out string) []BenchResult {
	var results []BenchResult
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Name: m[1], Iterations: iters}
		// The tail is value/unit pairs: "456.7 ns/op 89 B/op 1 allocs/op".
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		results = append(results, r)
	}
	return results
}

// nextSnapshotPath finds the first unused BENCH_<n>.json index in dir,
// continuing the sequence after the highest existing snapshot.
func nextSnapshotPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "BENCH_"), ".json"))
		if err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}
