package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: oselmrl
BenchmarkOSELMSeqTrainKernel/n=32-8         	    1000	    123456 ns/op	     512 B/op	       4 allocs/op
BenchmarkGEMM-8   	 200	 78910.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8 	 300	 42 ns/op
some log line from a benchmark body
PASS
ok  	oselmrl	1.234s
`
	rs := parseBench(out)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Name != "BenchmarkOSELMSeqTrainKernel/n=32-8" || r.Iterations != 1000 ||
		r.NsPerOp != 123456 || r.BytesPerOp != 512 || r.AllocsPerOp != 4 {
		t.Fatalf("result 0 = %+v", r)
	}
	if rs[1].NsPerOp != 78910.5 || rs[1].AllocsPerOp != 0 {
		t.Fatalf("result 1 = %+v", rs[1])
	}
	if rs[2].NsPerOp != 42 || rs[2].BytesPerOp != 0 {
		t.Fatalf("result 2 = %+v", rs[2])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if rs := parseBench("PASS\nok\n"); len(rs) != 0 {
		t.Fatalf("parsed %d results from benchless output", len(rs))
	}
}

func TestNextSnapshotPath(t *testing.T) {
	dir := t.TempDir()
	p, err := nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir → %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_7.json", "BENCH_x.json", "BENCH_3.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_8.json" {
		t.Fatalf("continuation → %s, want BENCH_8.json", p)
	}
}
