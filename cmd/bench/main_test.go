package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: oselmrl
BenchmarkOSELMSeqTrainKernel/n=32-8         	    1000	    123456 ns/op	     512 B/op	       4 allocs/op
BenchmarkGEMM-8   	 200	 78910.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem-8 	 300	 42 ns/op
some log line from a benchmark body
PASS
ok  	oselmrl	1.234s
`
	rs := parseBench(out)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Name != "BenchmarkOSELMSeqTrainKernel/n=32-8" || r.Iterations != 1000 ||
		r.NsPerOp != 123456 || r.BytesPerOp != 512 || r.AllocsPerOp != 4 {
		t.Fatalf("result 0 = %+v", r)
	}
	if rs[1].NsPerOp != 78910.5 || rs[1].AllocsPerOp != 0 {
		t.Fatalf("result 1 = %+v", rs[1])
	}
	if rs[2].NsPerOp != 42 || rs[2].BytesPerOp != 0 {
		t.Fatalf("result 2 = %+v", rs[2])
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if rs := parseBench("PASS\nok\n"); len(rs) != 0 {
		t.Fatalf("parsed %d results from benchless output", len(rs))
	}
}

func TestNextSnapshotPath(t *testing.T) {
	dir := t.TempDir()
	p, err := nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("empty dir → %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_7.json", "BENCH_x.json", "BENCH_3.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextSnapshotPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_8.json" {
		t.Fatalf("continuation → %s, want BENCH_8.json", p)
	}
}

func TestCompareSnapshots(t *testing.T) {
	oldSnap := Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA-8", NsPerOp: 100, AllocsPerOp: 2},
		{Name: "BenchmarkB-8", NsPerOp: 200},
		{Name: "BenchmarkGone-8", NsPerOp: 50},
	}}
	newSnap := Snapshot{Results: []BenchResult{
		{Name: "BenchmarkA-8", NsPerOp: 150, AllocsPerOp: 3}, // +50%, +1 alloc
		{Name: "BenchmarkB-8", NsPerOp: 100},                 // -50%
		{Name: "BenchmarkFresh-8", NsPerOp: 10},
	}}
	deltas := compareSnapshots(oldSnap, newSnap)
	if len(deltas) != 4 {
		t.Fatalf("deltas = %+v", deltas)
	}
	a := deltas[0]
	if a.Name != "BenchmarkA-8" || a.Pct != 50 || a.AllocDelta != 1 {
		t.Errorf("A delta %+v", a)
	}
	if b := deltas[1]; b.Pct != -50 {
		t.Errorf("B delta %+v", b)
	}
	if g := deltas[2]; !g.OnlyOld || g.Name != "BenchmarkGone-8" {
		t.Errorf("removed %+v", g)
	}
	if f := deltas[3]; !f.OnlyNew || f.Name != "BenchmarkFresh-8" {
		t.Errorf("new %+v", f)
	}

	// The regression gate only fires on matched slowdowns past threshold.
	if reg := regressions(deltas, 60); len(reg) != 0 {
		t.Errorf("no regression past 60%%, got %+v", reg)
	}
	reg := regressions(deltas, 25)
	if len(reg) != 1 || reg[0].Name != "BenchmarkA-8" {
		t.Errorf("regressions(25) = %+v", reg)
	}
	if reg := regressions(deltas, 0); reg != nil {
		t.Errorf("threshold 0 is report-only, got %+v", reg)
	}

	table := formatDeltas(deltas)
	for _, want := range []string{"BenchmarkA-8", "+50.0%", "-50.0%", "removed", "new"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestRunCompareThresholdExit(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s Snapshot) string {
		t.Helper()
		p := filepath.Join(dir, name)
		data, _ := json.Marshal(s)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", Snapshot{GitSHA: "aaa",
		Results: []BenchResult{{Name: "BenchmarkX-8", NsPerOp: 100}}})
	newP := write("new.json", Snapshot{GitSHA: "bbb",
		Results: []BenchResult{{Name: "BenchmarkX-8", NsPerOp: 400}}})
	if code := runCompare(oldP, newP, 100); code != 1 {
		t.Errorf("300%% regression past a 100%% threshold must exit 1, got %d", code)
	}
	if code := runCompare(oldP, newP, 0); code != 0 {
		t.Errorf("report-only compare must exit 0, got %d", code)
	}
	if code := runCompare(oldP, newP, 500); code != 0 {
		t.Errorf("regression inside the budget must exit 0, got %d", code)
	}
	if code := runCompare(filepath.Join(dir, "missing.json"), newP, 0); code != 1 {
		t.Errorf("missing snapshot must exit 1, got %d", code)
	}
}
