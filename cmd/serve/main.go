// Command serve runs the policy-inference service of internal/serve: it
// loads a trained agent checkpoint (cmd/train -save) and answers
// /v1/predict, /v1/act and /v1/info over HTTP JSON, with live Prometheus
// /metrics (plus /healthz and /snapshot) on the same listener.
//
// Usage:
//
//	go run ./cmd/train -design OS-ELM-L2-Lipschitz -save agent.json
//	go run ./cmd/serve -checkpoint agent.json -addr :8080
//	curl -s -d '{"state":[0.1,0,-0.05,0]}' localhost:8080/v1/predict
//
// Hot-reload: SIGHUP re-reads the checkpoint and swaps it in atomically
// (zero dropped requests); -watch POLLS the file's mtime instead, for
// training jobs that overwrite the snapshot on a schedule. SIGINT/SIGTERM
// shut down gracefully, draining in-flight requests. Overload is shed
// with 429 once the worker pool and its bounded queue are full — size
// them with -pool and -queue. cmd/loadgen measures the achieved
// throughput and latency quantiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/obs/slo"
	"oselmrl/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	checkpoint := flag.String("checkpoint", "", "trained agent snapshot to serve (required; see cmd/train -save)")
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	pool := flag.Int("pool", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting beyond the pool before 429 (0 = 4x pool, -1 = none)")
	timeout := flag.Duration("timeout", time.Second, "per-request budget including queue wait")
	watch := flag.Duration("watch", 0, "poll the checkpoint mtime at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	events := flag.String("events", "", "JSONL event log path (\"-\" for stderr); reload events land here")
	access := flag.Bool("access", false, "emit one serve_access event per request to -events (requires -events)")
	sloOn := flag.Bool("slo", false, "evaluate serving SLOs: burn-rate report at /slo, /healthz degrades on fast burn")
	sloP99 := flag.Float64("slo-p99", 100, "latency objective: p99 total latency in ms (with -slo; 0 disables)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective: max fraction shed/timed out is 1 minus this (with -slo; 0 disables)")
	tracePath := flag.String("trace", "", "record request spans and write a Chrome trace-event timeline here at shutdown (also live at /trace)")
	flag.Parse()
	if *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "serve: -checkpoint is required")
		return 2
	}
	if *access && *events == "" {
		fmt.Fprintln(os.Stderr, "serve: -access needs -events to write the access log to")
		return 2
	}

	emitter, err := cli.NewEventsEmitter(*events)
	if err != nil {
		return fail(err)
	}
	if emitter == nil {
		emitter = obs.NewEmitter(nil) // metrics-only: /metrics always serves
	}

	var eng *slo.Engine
	if *sloOn {
		eng = slo.NewEngine(slo.Objectives{LatencyP99MS: *sloP99, Availability: *sloAvail})
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		emitter.SetTracer(tracer)
	}

	svc, err := serve.New(serve.Config{
		Checkpoint: *checkpoint,
		Pool:       *pool,
		Queue:      *queue,
		Timeout:    *timeout,
		Obs:        emitter,
		AccessLog:  *access,
		SLO:        eng,
	})
	if err != nil {
		return fail(err)
	}
	info := svc.Policy().Info()
	fmt.Fprintf(os.Stderr, "serve: loaded %s (%s, %d->%d, hidden %d, %d updates)\n",
		info.Source, info.Design, info.ObservationSize, info.ActionCount, info.Hidden, info.Updates)

	exportOpts := []export.Option{export.WithRoute("/v1/", svc.Handler())}
	if eng != nil {
		exportOpts = append(exportOpts, export.WithSLO(eng))
	}
	if tracer != nil {
		exportOpts = append(exportOpts, export.WithTracer(tracer))
	}
	srv, err := export.Serve(*addr, emitter.Metrics(), exportOpts...)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (predict at /v1/predict, metrics at /metrics)\n", srv.Addr())

	if *watch > 0 {
		stop := svc.WatchCheckpoint(*watch, func(err error) {
			fmt.Fprintln(os.Stderr, "serve: watch:", err)
		})
		defer stop()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if err := svc.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "serve: reloaded checkpoint (generation %d)\n", svc.Policy().Generation())
			continue
		}
		fmt.Fprintf(os.Stderr, "serve: %s received, draining\n", sig)
		break
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail(fmt.Errorf("shutdown: %w", err))
	}
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "serve: %d request spans written to %s\n", tracer.Len(), *tracePath)
	}
	if eng != nil {
		rep := eng.Report()
		fmt.Fprintf(os.Stderr, "serve: slo: %d requests, %d slow, %d shed, %d timed out\n",
			rep.Requests, rep.SlowRequests, rep.Shed, rep.Timeouts)
	}
	if err := emitter.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "serve: drained, bye")
	return 0
}

// writeTrace dumps the recorded request spans as a Chrome trace-event
// timeline (the offline counterpart of the live /trace endpoint).
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteTrace(f, tracer.Spans(), export.TraceMeta{Tool: "serve", Dropped: tracer.Dropped()}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "serve:", err)
	return 1
}
