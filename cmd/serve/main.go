// Command serve runs the policy-inference service of internal/serve: it
// loads a trained agent checkpoint (cmd/train -save) and answers
// /v1/predict, /v1/act and /v1/info over HTTP JSON, with live Prometheus
// /metrics (plus /healthz and /snapshot) on the same listener.
//
// Usage:
//
//	go run ./cmd/train -design OS-ELM-L2-Lipschitz -save agent.json
//	go run ./cmd/serve -checkpoint agent.json -addr :8080
//	curl -s -d '{"state":[0.1,0,-0.05,0]}' localhost:8080/v1/predict
//
// Hot-reload: SIGHUP re-reads the checkpoint and swaps it in atomically
// (zero dropped requests); -watch POLLS the file's mtime instead, for
// training jobs that overwrite the snapshot on a schedule. SIGINT/SIGTERM
// shut down gracefully, draining in-flight requests. Overload is shed
// with 429 once the worker pool and its bounded queue are full — size
// them with -pool and -queue. cmd/loadgen measures the achieved
// throughput and latency quantiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/serve"
)

func main() { os.Exit(run()) }

func run() int {
	checkpoint := flag.String("checkpoint", "", "trained agent snapshot to serve (required; see cmd/train -save)")
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	pool := flag.Int("pool", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting beyond the pool before 429 (0 = 4x pool, -1 = none)")
	timeout := flag.Duration("timeout", time.Second, "per-request budget including queue wait")
	watch := flag.Duration("watch", 0, "poll the checkpoint mtime at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	events := flag.String("events", "", "JSONL event log path (\"-\" for stderr); reload events land here")
	flag.Parse()
	if *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "serve: -checkpoint is required")
		return 2
	}

	emitter, err := cli.NewEventsEmitter(*events)
	if err != nil {
		return fail(err)
	}
	if emitter == nil {
		emitter = obs.NewEmitter(nil) // metrics-only: /metrics always serves
	}

	svc, err := serve.New(serve.Config{
		Checkpoint: *checkpoint,
		Pool:       *pool,
		Queue:      *queue,
		Timeout:    *timeout,
		Obs:        emitter,
	})
	if err != nil {
		return fail(err)
	}
	info := svc.Policy().Info()
	fmt.Fprintf(os.Stderr, "serve: loaded %s (%s, %d->%d, hidden %d, %d updates)\n",
		info.Source, info.Design, info.ObservationSize, info.ActionCount, info.Hidden, info.Updates)

	srv, err := export.Serve(*addr, emitter.Metrics(), export.WithRoute("/v1/", svc.Handler()))
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (predict at /v1/predict, metrics at /metrics)\n", srv.Addr())

	if *watch > 0 {
		stop := svc.WatchCheckpoint(*watch, func(err error) {
			fmt.Fprintln(os.Stderr, "serve: watch:", err)
		})
		defer stop()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if err := svc.Reload(); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "serve: reloaded checkpoint (generation %d)\n", svc.Policy().Generation())
			continue
		}
		fmt.Fprintf(os.Stderr, "serve: %s received, draining\n", sig)
		break
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail(fmt.Errorf("shutdown: %w", err))
	}
	if err := emitter.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "serve: drained, bye")
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "serve:", err)
	return 1
}
