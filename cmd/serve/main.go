// Command serve runs the policy-inference service of internal/serve: it
// loads trained agent checkpoints (cmd/train -save) and answers
// /v1/predict, /v1/act and /v1/info over HTTP JSON, with live Prometheus
// /metrics (plus /healthz and /snapshot) on the same listener.
//
// Usage:
//
//	go run ./cmd/train -design OS-ELM-L2-Lipschitz -save agent.json
//	go run ./cmd/serve -checkpoint agent.json -addr :8080
//	curl -s -d '{"state":[0.1,0,-0.05,0]}' localhost:8080/v1/predict
//
// Multi-tenant serving: each repeatable -policy name=path flag registers
// an independently hot-reloadable policy at /v1/t/{name}/predict (and
// /act, /info), with tenant-labeled metrics and per-tenant quotas set by
// repeatable -quota name=rps flags. -checkpoint is shorthand for
// -policy default=path; the "default" tenant also answers the bare /v1/*
// routes.
//
// Micro-batching: -batch-window coalesces in-flight evaluations per
// tenant into one GEMM (up to -batch-max per flush). Answers are
// bit-identical to the per-request path; throughput rises because the
// matrix-matrix product amortizes per-request dispatch.
//
// Hot-reload: SIGHUP re-reads every checkpoint and swaps each in
// atomically (zero dropped requests); -watch POLLS each file's content
// fingerprint instead, for training jobs that overwrite snapshots on a
// schedule (failed reloads retry every tick). SIGINT/SIGTERM shut down
// gracefully, draining in-flight requests. Overload is shed with 429 and
// a queue-depth-derived Retry-After once the worker pool and its bounded
// queue are full — size them with -pool and -queue. cmd/loadgen measures
// the achieved throughput and latency quantiles.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/obs/slo"
	"oselmrl/internal/serve"
)

// mapFlag collects repeatable name=value flags into a map.
type mapFlag struct {
	vals map[string]string
	what string
}

func (m *mapFlag) String() string {
	if m == nil || len(m.vals) == 0 {
		return ""
	}
	parts := make([]string, 0, len(m.vals))
	for k, v := range m.vals {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (m *mapFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" || val == "" {
		return fmt.Errorf("want name=%s", m.what)
	}
	if m.vals == nil {
		m.vals = make(map[string]string)
	}
	if _, dup := m.vals[name]; dup {
		return fmt.Errorf("duplicate %q", name)
	}
	m.vals[name] = val
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	checkpoint := flag.String("checkpoint", "", "trained agent snapshot for the default tenant (see cmd/train -save)")
	policies := &mapFlag{what: "path"}
	flag.Var(policies, "policy", "tenant policy as name=checkpoint.json (repeatable; served at /v1/t/{name}/)")
	quotas := &mapFlag{what: "rps"}
	flag.Var(quotas, "quota", "per-tenant request quota as name=requests_per_second (repeatable; breach answers 429)")
	addr := flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
	pool := flag.Int("pool", 0, "max concurrent evaluations (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting beyond the pool before 429 (0 = 4x pool, -1 = none)")
	timeout := flag.Duration("timeout", time.Second, "per-request budget including queue wait")
	batchWindow := flag.Duration("batch-window", 0, "micro-batch in-flight evaluations per tenant for this window (0 = off)")
	batchMax := flag.Int("batch-max", 16, "max evaluations per micro-batch flush (with -batch-window)")
	watch := flag.Duration("watch", 0, "poll every checkpoint's content fingerprint at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	events := flag.String("events", "", "JSONL event log path (\"-\" for stderr); reload events land here")
	access := flag.Bool("access", false, "emit one serve_access event per request to -events (requires -events)")
	sloOn := flag.Bool("slo", false, "evaluate serving SLOs: burn-rate report at /slo, /healthz degrades on fast burn")
	sloP99 := flag.Float64("slo-p99", 100, "latency objective: p99 total latency in ms (with -slo; 0 disables)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective: max fraction shed/timed out is 1 minus this (with -slo; 0 disables)")
	tracePath := flag.String("trace", "", "record request spans and write a Chrome trace-event timeline here at shutdown (also live at /trace)")
	flag.Parse()
	if *checkpoint == "" && len(policies.vals) == 0 {
		fmt.Fprintln(os.Stderr, "serve: -checkpoint or at least one -policy name=path is required")
		return 2
	}
	if *access && *events == "" {
		fmt.Fprintln(os.Stderr, "serve: -access needs -events to write the access log to")
		return 2
	}
	quotaRates := make(map[string]float64, len(quotas.vals))
	for name, val := range quotas.vals {
		rps, err := strconv.ParseFloat(val, 64)
		if err != nil || rps <= 0 {
			fmt.Fprintf(os.Stderr, "serve: -quota %s=%s: want a positive requests/second\n", name, val)
			return 2
		}
		quotaRates[name] = rps
	}

	emitter, err := cli.NewEventsEmitter(*events)
	if err != nil {
		return fail(err)
	}
	if emitter == nil {
		emitter = obs.NewEmitter(nil) // metrics-only: /metrics always serves
	}

	var eng *slo.Engine
	if *sloOn {
		eng = slo.NewEngine(slo.Objectives{LatencyP99MS: *sloP99, Availability: *sloAvail})
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer()
		emitter.SetTracer(tracer)
	}

	svc, err := serve.New(serve.Config{
		Checkpoint:  *checkpoint,
		Policies:    policies.vals,
		Quotas:      quotaRates,
		Pool:        *pool,
		Queue:       *queue,
		Timeout:     *timeout,
		BatchWindow: *batchWindow,
		BatchMax:    *batchMax,
		Obs:         emitter,
		AccessLog:   *access,
		SLO:         eng,
	})
	if err != nil {
		return fail(err)
	}
	defer svc.Close()
	for _, name := range svc.Tenants() {
		t, _ := svc.Tenant(name)
		info := t.Policy().Info()
		fmt.Fprintf(os.Stderr, "serve: tenant %s: loaded %s (%s, %d->%d, hidden %d, %d updates)\n",
			name, info.Source, info.Design, info.ObservationSize, info.ActionCount, info.Hidden, info.Updates)
	}
	if *batchWindow > 0 {
		fmt.Fprintf(os.Stderr, "serve: micro-batching on (window %s, max %d)\n", *batchWindow, *batchMax)
	}

	exportOpts := []export.Option{export.WithRoute("/v1/", svc.Handler())}
	if eng != nil {
		exportOpts = append(exportOpts, export.WithSLO(eng))
	}
	if tracer != nil {
		exportOpts = append(exportOpts, export.WithTracer(tracer))
	}
	srv, err := export.Serve(*addr, emitter.Metrics(), exportOpts...)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (predict at /v1/predict, metrics at /metrics)\n", srv.Addr())

	if *watch > 0 {
		stop := svc.WatchAll(*watch, func(err error) {
			fmt.Fprintln(os.Stderr, "serve: watch:", err)
		})
		defer stop()
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			if err := svc.ReloadAll(); err != nil {
				fmt.Fprintln(os.Stderr, "serve:", err)
				continue
			}
			for _, name := range svc.Tenants() {
				t, _ := svc.Tenant(name)
				fmt.Fprintf(os.Stderr, "serve: reloaded tenant %s (generation %d)\n", name, t.Policy().Generation())
			}
			continue
		}
		fmt.Fprintf(os.Stderr, "serve: %s received, draining\n", sig)
		break
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fail(fmt.Errorf("shutdown: %w", err))
	}
	svc.Close()
	if tracer != nil {
		if err := writeTrace(*tracePath, tracer); err != nil {
			return fail(err)
		}
		fmt.Fprintf(os.Stderr, "serve: %d request spans written to %s\n", tracer.Len(), *tracePath)
	}
	if eng != nil {
		rep := eng.Report()
		fmt.Fprintf(os.Stderr, "serve: slo: %d requests, %d slow, %d shed, %d timed out\n",
			rep.Requests, rep.SlowRequests, rep.Shed, rep.Timeouts)
	}
	if err := emitter.Close(); err != nil {
		return fail(err)
	}
	fmt.Fprintln(os.Stderr, "serve: drained, bye")
	return 0
}

// writeTrace dumps the recorded request spans as a Chrome trace-event
// timeline (the offline counterpart of the live /trace endpoint).
func writeTrace(path string, tracer *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteTrace(f, tracer.Spans(), export.TraceMeta{Tool: "serve", Dropped: tracer.Dropped()}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "serve:", err)
	return 1
}
