// Command train is the general-purpose training tool: train any design on
// any built-in environment, report the outcome, optionally evaluate the
// greedy policy and persist the trained agent to JSON for later
// deployment (ELM/OS-ELM designs).
//
// Usage:
//
//	go run ./cmd/train -design OS-ELM-L2-Lipschitz -env cartpole -hidden 32
//	go run ./cmd/train -design DQN -env gridworld -episodes 500
//	go run ./cmd/train -design OS-ELM-L2 -save agent.json -eval 20
//	go run ./cmd/train -load agent.json -eval 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
)

func makeEnv(name string, seed uint64) (env.Env, error) {
	switch strings.ToLower(name) {
	case "cartpole", "cartpole-v0":
		return env.NewShaped(env.NewCartPoleV0(seed), env.RewardSurvival), nil
	case "cartpole-v1":
		return env.NewShaped(env.NewCartPoleV1(seed), env.RewardSurvival), nil
	case "mountaincar":
		return env.NewShaped(env.NewMountainCar(seed), env.RewardPerStepClipped), nil
	case "acrobot":
		return env.NewShaped(env.NewAcrobot(seed), env.RewardPerStepClipped), nil
	case "gridworld":
		return env.NewGridWorld(5, seed), nil
	case "pendulum":
		return env.NewShaped(env.NewPendulum(seed), env.RewardPerStepClipped), nil
	}
	return nil, fmt.Errorf("unknown environment %q (cartpole, cartpole-v1, mountaincar, acrobot, gridworld, pendulum)", name)
}

// solveFor returns the solve threshold appropriate for the task: the
// CartPole-v0 criterion for CartPole, otherwise "never" so the run uses
// its full budget and reports the learning progress.
func solveFor(name string, cfg *harness.Config) {
	if !strings.HasPrefix(strings.ToLower(name), "cartpole") {
		cfg.SolveThreshold = 1e18
	}
}

func main() {
	designName := flag.String("design", "OS-ELM-L2-Lipschitz", "design to train")
	envName := flag.String("env", "cartpole", "environment")
	hidden := flag.Int("hidden", 32, "hidden width")
	episodes := flag.Int("episodes", 5000, "episode budget")
	seed := flag.Uint64("seed", 1, "seed")
	savePath := flag.String("save", "", "save the trained agent to this JSON file (ELM/OS-ELM designs)")
	loadPath := flag.String("load", "", "load an agent snapshot instead of training")
	evalEps := flag.Int("eval", 0, "greedy-policy evaluation episodes after training")
	flag.Parse()

	task, err := makeEnv(*envName, *seed+100)
	if err != nil {
		fail(err)
	}

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		agent, err := persist.LoadAgent(f)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Loaded %s agent from %s\n", agent.Name(), *loadPath)
		if *evalEps > 0 {
			score := harness.EvaluateGreedy(agent, task, *evalEps, true)
			fmt.Printf("Greedy evaluation over %d episodes: %.1f steps/episode\n", *evalEps, score)
		}
		return
	}

	d, err := harness.ParseDesign(*designName)
	if err != nil {
		fail(err)
	}
	agent, err := harness.NewAgent(d, task.ObservationSize(), task.ActionCount(), *hidden, *seed)
	if err != nil {
		fail(err)
	}
	cfg := harness.RunConfigFor(d, harness.Defaults())
	cfg.MaxEpisodes = *episodes
	solveFor(*envName, &cfg)

	fmt.Printf("Training %s on %s (%d hidden units, <= %d episodes) ...\n",
		d, task.Name(), *hidden, *episodes)
	res := harness.Run(agent, task, cfg)
	if res.Err != nil {
		fmt.Println("warning:", res.Err)
	}
	best := 0.0
	for _, p := range res.Curve {
		if p.MovingAvg > best {
			best = p.MovingAvg
		}
	}
	if res.Solved {
		fmt.Printf("Solved in %d episodes (%d resets, %d steps)\n", res.Episodes, res.Resets, res.TotalSteps)
	} else {
		fmt.Printf("Budget exhausted after %d episodes (best 100-episode average %.1f)\n",
			res.Episodes, best)
	}
	bd := harness.Breakdown(d, res.Counters)
	fmt.Println("Modelled device time:")
	fmt.Print(bd.Format())

	if *evalEps > 0 {
		if gp, ok := agent.(harness.GreedyPolicy); ok {
			score := harness.EvaluateGreedy(gp, task, *evalEps, true)
			fmt.Printf("Greedy evaluation over %d episodes: %.1f steps/episode\n", *evalEps, score)
		}
	}

	if *savePath != "" {
		qa, ok := agent.(*qnet.Agent)
		if !ok {
			fail(fmt.Errorf("-save supports the ELM/OS-ELM designs, not %s", d))
		}
		f, err := os.Create(*savePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := persist.SaveAgent(f, qa); err != nil {
			fail(err)
		}
		fmt.Println("Agent snapshot written to", *savePath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
