// Command train is the general-purpose training tool: train any design on
// any built-in environment, report the outcome, optionally evaluate the
// greedy policy and persist the trained agent to JSON for later
// deployment (ELM/OS-ELM designs).
//
// Usage:
//
//	go run ./cmd/train -design OS-ELM-L2-Lipschitz -env cartpole -hidden 32
//	go run ./cmd/train -design DQN -env gridworld -episodes 500
//	go run ./cmd/train -design OS-ELM-L2 -save agent.json -eval 20
//	go run ./cmd/train -load agent.json -eval 20
//	go run ./cmd/train -events run.jsonl -manifest run.json -pprof localhost:6060
//	go run ./cmd/train -serve :9090 -trace run-trace.json
//
// The final solve/impossible verdict is echoed to stderr and reflected in
// the exit code — 0 when solved, 3 when the episode budget ran out
// ("impossible", paper §4.4) — so scripted sweeps can branch on outcome.
// With -events the run emits a JSONL event stream (see cmd/runlog and
// README.md §Observability); -manifest records the full configuration and
// outcome as a JSON header; -serve exposes live Prometheus /metrics (plus
// /healthz, /snapshot and /trace) while the run executes; -trace writes a
// Chrome/Perfetto trace-event timeline of the run's phases (measured wall
// time paired with modelled device time) at exit; -pprof serves
// net/http/pprof for live profiling of long runs ("serve" mounts it on
// the -serve address instead); -watchdog arms the divergence watchdog
// (numeric_alert events, a diverged verdict in run_end and the manifest,
// and /health on the -serve mux — see README.md §Numeric health);
// -linger keeps the -serve endpoints up after the run so CI or a
// scheduler can take one final scrape of the end-state metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fleet"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/persist"
	"oselmrl/internal/qnet"
)

// exitImpossible is the exit code for a run that exhausted its episode
// budget without meeting the solve criterion.
const exitImpossible = 3

func main() { os.Exit(run()) }

func run() int {
	designName := flag.String("design", "OS-ELM-L2-Lipschitz", "design to train")
	envName := flag.String("env", "cartpole", "environment")
	hidden := flag.Int("hidden", 32, "hidden width")
	episodes := flag.Int("episodes", 5000, "episode budget")
	seed := flag.Uint64("seed", 1, "seed")
	savePath := flag.String("save", "", "save the trained agent to this JSON file (ELM/OS-ELM designs)")
	loadPath := flag.String("load", "", "load an agent snapshot instead of training")
	evalEps := flag.Int("eval", 0, "greedy-policy evaluation episodes after training")
	eventsPath := flag.String("events", "", "write a JSONL run-event log to this file ('-' for stderr)")
	manifestPath := flag.String("manifest", "", "write a JSON run manifest to this file")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /snapshot, /trace) on this address (e.g. :9090; :0 picks a port)")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060), or 'serve' to mount it on the -serve address")
	watchdog := flag.Bool("watchdog", false, "enable the divergence watchdog (numeric_alert events, diverged verdict, /health on -serve)")
	profile := flag.Bool("profile", false, "enable the FPGA device-level cycle profiler (fpga_cycles/fpga_bram_access metrics, occupancy gauges, device_profile events; FPGA design only)")
	linger := flag.Duration("linger", 0, "keep the -serve telemetry server up this long after the run so a final scrape sees the end state (e.g. 10s)")
	qformatName := flag.String("qformat", "Q20", "fixed-point format of the FPGA design's datapath (Q16..Q24; FPGA design only)")
	coresFlag := flag.Int("cores", 1, "fleet mode: simulated cores per device — trains cores*devices population members and models multi-core device time (FPGA design only)")
	devicesFlag := flag.Int("devices", 1, "fleet mode: replicated devices (see -cores)")
	flag.Parse()

	qformat, err := cli.ParseQFormat(*qformatName)
	if err != nil {
		return fail(err)
	}

	tel, err := cli.StartTelemetry(cli.TelemetryFlags{
		Events: *eventsPath, Serve: *serveAddr, Trace: *tracePath, Pprof: *pprofAddr,
		Watchdog: *watchdog, Profile: *profile,
	})
	if err != nil {
		return fail(err)
	}

	task, err := cli.MakeEnv(*envName, *seed+100)
	if err != nil {
		return fail(err)
	}

	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		agent, err := persist.LoadAgent(f)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("Loaded %s agent from %s\n", agent.Name(), *loadPath)
		if *evalEps > 0 {
			score := harness.EvaluateGreedy(agent, task, *evalEps, true)
			fmt.Printf("Greedy evaluation over %d episodes: %.1f steps/episode\n", *evalEps, score)
		}
		return 0
	}

	d, err := harness.ParseDesign(*designName)
	if err != nil {
		return fail(err)
	}
	agent, err := harness.NewAgentQ(d, task.ObservationSize(), task.ActionCount(), *hidden, *seed, qformat)
	if err != nil {
		return fail(err)
	}
	cfg := harness.RunConfigFor(d, harness.Defaults())
	cfg.MaxEpisodes = *episodes
	cli.SolveFor(*envName, &cfg)

	labels := map[string]string{
		"hidden": fmt.Sprint(*hidden),
		"seed":   fmt.Sprint(*seed),
	}
	if d == harness.DesignFPGA {
		labels["qformat"] = qformat.String()
	}
	cfg.Obs = tel.Emitter.With(labels)
	cfg.DeviceProfile = tel.Profile

	if *coresFlag > 1 || *devicesFlag > 1 {
		return runFleetMode(fleetParams{
			design: d, envName: *envName, task: task, hidden: *hidden,
			seed: *seed, qformat: qformat, cfg: cfg, tel: tel,
			manifestPath: *manifestPath, cores: *coresFlag, devices: *devicesFlag,
			linger: *linger, serveAddr: *serveAddr,
		})
	}

	manifest := obs.NewManifest()
	manifest.Design = string(d)
	manifest.Env = task.Name()
	manifest.Hidden = *hidden
	manifest.Seed = *seed
	if d == harness.DesignFPGA {
		manifest.QFormat = qformat.String()
	}
	manifest.Config = cfg
	manifest.EventsPath = *eventsPath
	manifest.Extra = map[string]string{"tool": "train"}

	fmt.Printf("Training %s on %s (%d hidden units, <= %d episodes) ...\n",
		d, task.Name(), *hidden, *episodes)
	res := harness.Run(agent, task, cfg)
	if err := tel.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "train: closing telemetry:", err)
	}
	if res.Err != nil {
		fmt.Println("warning:", res.Err)
	}
	best := 0.0
	for _, p := range res.Curve {
		if p.MovingAvg > best {
			best = p.MovingAvg
		}
	}
	if res.Solved {
		fmt.Printf("Solved in %d episodes (%d resets, %d steps)\n", res.Episodes, res.Resets, res.TotalSteps)
	} else {
		fmt.Printf("Budget exhausted after %d episodes (best 100-episode average %.1f)\n",
			res.Episodes, best)
	}
	bd := harness.Breakdown(d, res.Counters)
	fmt.Println("Modelled device time:")
	fmt.Print(bd.Format())

	if *manifestPath != "" {
		manifest.End = manifest.Start.Add(res.WallTime)
		manifest.Outcome = &obs.Outcome{
			Solved:      res.Solved,
			Episodes:    res.Episodes,
			TotalSteps:  res.TotalSteps,
			Resets:      res.Resets,
			WallSeconds: res.WallTime.Seconds(),
		}
		if res.Err != nil {
			manifest.Outcome.Err = res.Err.Error()
		}
		manifest.Outcome.Diverged = res.Diverged
		manifest.Outcome.NumericAlerts = res.Alerts
		manifest.Metrics = res.Metrics
		if err := cli.WriteManifestFile(*manifestPath, manifest); err != nil {
			return fail(err)
		}
		fmt.Println("Run manifest written to", *manifestPath)
	}

	if *evalEps > 0 {
		if gp, ok := agent.(harness.GreedyPolicy); ok {
			score := harness.EvaluateGreedy(gp, task, *evalEps, true)
			fmt.Printf("Greedy evaluation over %d episodes: %.1f steps/episode\n", *evalEps, score)
		}
	}

	if *savePath != "" {
		qa, ok := agent.(*qnet.Agent)
		if !ok {
			return fail(fmt.Errorf("-save supports the ELM/OS-ELM designs, not %s", d))
		}
		f, err := os.Create(*savePath)
		if err != nil {
			return fail(err)
		}
		if err := persist.SaveAgent(f, qa); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Println("Agent snapshot written to", *savePath)
	}

	if *linger > 0 && *serveAddr != "" {
		fmt.Fprintf(os.Stderr, "train: telemetry server lingering %s for a final scrape\n", *linger)
		time.Sleep(*linger)
	}

	if res.Diverged {
		fmt.Fprintf(os.Stderr, "train: watchdog: run DIVERGED (%d alerts)\n", len(res.Alerts))
		for _, al := range res.Alerts {
			fmt.Fprintf(os.Stderr, "train: watchdog:   %s on %s: value %g vs threshold %g (%d violations)\n",
				al.Rule, al.Metric, al.Value, al.Threshold, al.Count)
		}
	}

	// The machine-readable verdict goes to stderr so sweeps can branch on
	// it without parsing the human-oriented stdout report.
	if res.Solved {
		fmt.Fprintf(os.Stderr, "train: verdict solved episodes=%d\n", res.Episodes)
		return 0
	}
	fmt.Fprintf(os.Stderr, "train: verdict impossible episodes=%d\n", res.Episodes)
	return exitImpossible
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "train:", err)
	return 1
}

// fleetParams carries run()'s inputs into fleet mode.
type fleetParams struct {
	design         harness.Design
	envName        string
	task           env.Env
	hidden         int
	seed           uint64
	qformat        fixed.QFormat
	cfg            harness.Config
	tel            *cli.Telemetry
	manifestPath   string
	cores, devices int
	linger         time.Duration
	serveAddr      string
}

// runFleetMode trains cores×devices population members (independent
// agents, environments and RNG streams) and reports the discrete-event
// fleet simulator's modelled multi-core device time: the 1→cores
// speedup curve plus the devices-wide makespan. The member count is
// capped by the Table 3 resource estimator — the simulator never models
// more cores than the device admits.
func runFleetMode(p fleetParams) int {
	if p.design != harness.DesignFPGA {
		return fail(fmt.Errorf("-cores/-devices model the FPGA fleet; design %s has no device model", p.design))
	}
	inputs := p.task.ObservationSize() + 1
	u := fpga.EstimateResources(inputs, p.hidden)
	if !u.Feasible {
		return fail(fmt.Errorf("a %d-unit core does not fit %s (needs %d BRAM36)",
			p.hidden, fpga.XC7Z020.Name, u.BRAM36))
	}
	coreCap, binding := fpga.CoresPerDevice(u, fpga.XC7Z020)
	if p.cores > coreCap {
		return fail(fmt.Errorf("-cores %d exceeds the %d cores a %d-unit design admits per %s (bound by %s)",
			p.cores, coreCap, p.hidden, fpga.XC7Z020.Name, binding))
	}

	obsSize, actions := p.task.ObservationSize(), p.task.ActionCount()
	spec := harness.FleetSpec{
		TrialSpec: harness.TrialSpec{
			MakeAgent: func(seed uint64) (harness.Agent, error) {
				return harness.NewAgentQ(p.design, obsSize, actions, p.hidden, seed, p.qformat)
			},
			MakeEnv: func(seed uint64) env.Env {
				// The env name was validated when run() built p.task.
				e, err := cli.MakeEnv(p.envName, seed+100)
				if err != nil {
					panic(err)
				}
				return e
			},
			Config:   p.cfg,
			BaseSeed: p.seed,
		},
		Cores:   p.cores,
		Devices: p.devices,
	}
	members := p.cores * p.devices
	fmt.Printf("Fleet training %s on %s: %d members across %d device(s) x %d core(s), <= %d episodes each ...\n",
		p.design, p.task.Name(), members, p.devices, p.cores, p.cfg.MaxEpisodes)
	start := time.Now()
	res, err := harness.RunFleet(spec)
	wall := time.Since(start)
	if cerr := p.tel.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "train: closing telemetry:", cerr)
	}
	if err != nil {
		return fail(err)
	}

	agg := harness.Summarize(res.Members, nil)
	var episodes, steps int
	for _, r := range res.Members {
		if r != nil {
			episodes += r.Episodes
			steps += r.TotalSteps
		}
	}
	fmt.Printf("Solved %d/%d members", agg.SolvedCount, agg.Trials)
	if agg.SolvedCount > 0 {
		fmt.Printf(" (mean %.1f episodes to solve)", agg.MeanEpisodes)
	}
	fmt.Printf("; %d episodes, %d steps total\n", episodes, steps)

	fmt.Println("Merged modelled device time (all members, serialized reference):")
	fmt.Print(harness.Breakdown(p.design, res.Merged).Format())

	proj := res.Projection
	fmt.Printf("\nFleet speedup (resource cap %d cores/device, bound by %s):\n", coreCap, binding)
	fmt.Print(fleet.FormatSpeedupTable(proj.Curve))
	fmt.Printf("Modelled fleet time: %.4fs sequential -> %.4fs on %d device(s) x %d core(s) (speedup %.2f)\n",
		proj.SequentialSeconds, proj.FleetSeconds, p.devices, p.cores, proj.Speedup)

	if p.manifestPath != "" {
		manifest := obs.NewManifest()
		manifest.Design = string(p.design)
		manifest.Env = p.task.Name()
		manifest.Hidden = p.hidden
		manifest.Seed = p.seed
		manifest.QFormat = p.qformat.String()
		manifest.Config = p.cfg
		manifest.End = manifest.Start.Add(wall)
		manifest.Outcome = &obs.Outcome{
			Solved:      agg.SolvedCount > 0,
			Episodes:    episodes,
			TotalSteps:  steps,
			WallSeconds: wall.Seconds(),
		}
		manifest.Extra = map[string]string{
			"tool":    "train",
			"cores":   fmt.Sprint(p.cores),
			"devices": fmt.Sprint(p.devices),
			"speedup": fmt.Sprintf("%.4f", proj.Speedup),
		}
		if err := cli.WriteManifestFile(p.manifestPath, manifest); err != nil {
			return fail(err)
		}
		fmt.Println("Run manifest written to", p.manifestPath)
	}

	if p.linger > 0 && p.serveAddr != "" {
		fmt.Fprintf(os.Stderr, "train: telemetry server lingering %s for a final scrape\n", p.linger)
		time.Sleep(p.linger)
	}

	if agg.SolvedCount > 0 {
		fmt.Fprintf(os.Stderr, "train: verdict solved members=%d/%d\n", agg.SolvedCount, agg.Trials)
		return 0
	}
	fmt.Fprintf(os.Stderr, "train: verdict impossible members=0/%d\n", agg.Trials)
	return exitImpossible
}
