// Command ablation runs the design-choice sweeps of DESIGN.md's
// experiment index: the L2 parameter δ (A1), the random-update probability
// ε₂ (A2), and the beyond-paper extensions — Double Q-learning targets and
// the forgetting-factor sequential update (X3/X4). Each configuration is
// trained for a fixed episode budget over several seeds and summarized by
// its best 100-episode moving average and solve count.
//
// The wordlength sweep (W1) is the fixed-point precision ablation: it
// trains the FPGA design at each -qformat fraction width (Q16/Q20/Q24 by
// default) next to the float64 OS-ELM-L2-Lipschitz reference, and reports
// solve counts, episodes-to-solve, best moving average and the quantized
// datapath's numeric-health accounting (quantization error per op,
// saturation rate, denominator-guard trips).
//
// Usage:
//
//	go run ./cmd/ablation -sweep delta -trials 3 -episodes 2000
//	go run ./cmd/ablation -sweep eps2
//	go run ./cmd/ablation -sweep doubleq -events sweep.jsonl -manifest sweep.json
//	go run ./cmd/ablation -sweep wordlength -qformat Q16,Q20,Q24
//
// With -events every configuration's trials stream structured run events
// into one labeled JSONL log (see cmd/runlog); -manifest records the sweep
// parameters; -serve exposes live Prometheus /metrics while the sweep
// runs; -trace writes a Chrome/Perfetto trace-event timeline at exit;
// -pprof serves net/http/pprof for live profiling ("serve" mounts it on
// the -serve address).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
	"oselmrl/internal/stats"
)

func main() {
	sweep := flag.String("sweep", "delta", "sweep to run: delta | eps2 | doubleq | encoding | wordlength")
	qformatsFlag := flag.String("qformat", "Q16,Q20,Q24", "comma-separated fixed-point formats for the wordlength sweep")
	hidden := flag.Int("hidden", 32, "hidden width")
	trials := flag.Int("trials", 3, "seeds per configuration")
	episodes := flag.Int("episodes", 2000, "episode budget per trial")
	eventsPath := flag.String("events", "", "write a merged JSONL run-event log to this file ('-' for stderr)")
	manifestPath := flag.String("manifest", "", "write a JSON sweep manifest to this file")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /snapshot, /trace) on this address")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060), or 'serve' to mount it on the -serve address")
	watchdog := flag.Bool("watchdog", false, "enable the divergence watchdog (numeric_alert events, /health on -serve)")
	profile := flag.Bool("profile", false, "enable the FPGA device-level cycle profiler (fpga_cycles/fpga_bram_access metrics, device_profile events; FPGA rows of the wordlength sweep only)")
	flag.Parse()

	tel, err := cli.StartTelemetry(cli.TelemetryFlags{
		Events: *eventsPath, Serve: *serveAddr, Trace: *tracePath, Pprof: *pprofAddr,
		Watchdog: *watchdog, Profile: *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablation:", err)
		os.Exit(1)
	}
	emitter := tel.Emitter
	start := time.Now()

	if *sweep == "wordlength" {
		formats, err := cli.ParseQFormatList(*qformatsFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(2)
		}
		labels := runWordlength(formats, *hidden, *trials, *episodes, emitter, tel.Profile)
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ablation: closing telemetry:", err)
		}
		if wd := tel.Watchdog(); wd.Diverged() {
			fmt.Fprintf(os.Stderr, "ablation: watchdog: %d numeric alerts across the sweep\n", wd.AlertCount())
		}
		if *manifestPath != "" {
			m := obs.NewManifest()
			m.Start = start
			m.End = time.Now()
			m.Hidden = *hidden
			m.Trials = *trials
			m.Config = map[string]any{
				"sweep":    "wordlength",
				"configs":  labels,
				"episodes": *episodes,
				"design":   string(harness.DesignFPGA),
			}
			m.EventsPath = *eventsPath
			m.Extra = map[string]string{"tool": "ablation"}
			if emitter.Enabled() {
				snap := emitter.Metrics().Snapshot()
				m.Metrics = &snap
			}
			if err := cli.WriteManifestFile(*manifestPath, m); err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			fmt.Println("Sweep manifest written to", *manifestPath)
		}
		return
	}

	type variant struct {
		label  string
		mutate func(*qnet.Config)
	}
	var variants []variant
	switch *sweep {
	case "delta":
		for _, d := range []float64{0.1, 0.5, 1, 2, 5} {
			d := d
			variants = append(variants, variant{
				label:  fmt.Sprintf("delta=%g", d),
				mutate: func(c *qnet.Config) { c.Delta = d },
			})
		}
	case "eps2":
		for _, e := range []float64{0.1, 0.25, 0.5, 0.75, 1} {
			e := e
			variants = append(variants, variant{
				label:  fmt.Sprintf("eps2=%g", e),
				mutate: func(c *qnet.Config) { c.Epsilon2 = e },
			})
		}
	case "doubleq":
		variants = []variant{
			{label: "standard", mutate: func(c *qnet.Config) {}},
			{label: "double-q", mutate: func(c *qnet.Config) { c.DoubleQ = true }},
		}
	case "encoding":
		variants = []variant{
			{label: "scalar-action", mutate: func(c *qnet.Config) {}},
			{label: "one-hot-action", mutate: func(c *qnet.Config) { c.OneHotActions = true }},
		}
	default:
		fmt.Fprintf(os.Stderr, "ablation: unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	fmt.Printf("Ablation sweep %q — OS-ELM-L2-Lipschitz, %d hidden units, %d trials x %d episodes\n\n",
		*sweep, *hidden, *trials, *episodes)
	fmt.Printf("%-18s %-10s %-14s %-12s\n", "config", "solved", "bestMA mean", "bestMA max")
	for _, v := range variants {
		bests := make([]float64, 0, *trials)
		solved := 0
		for i := 0; i < *trials; i++ {
			cfg := qnet.DefaultConfig(qnet.VariantOSELML2Lipschitz, 4, 2, *hidden)
			cfg.Seed = uint64(i) + 1
			v.mutate(&cfg)
			agent, err := qnet.New(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			task := env.NewShaped(env.NewCartPoleV0(uint64(i)+101), env.RewardSurvival)
			rc := harness.Defaults()
			rc.MaxEpisodes = *episodes
			rc.Obs = emitter.With(map[string]string{
				"config": v.label,
				"trial":  strconv.Itoa(i),
			})
			res := harness.Run(agent, task, rc)
			best := 0.0
			for _, p := range res.Curve {
				if p.MovingAvg > best {
					best = p.MovingAvg
				}
			}
			bests = append(bests, best)
			if res.Solved {
				solved++
			}
		}
		s := stats.Summarize(bests)
		fmt.Printf("%-18s %d/%-8d %-14.1f %-12.1f\n", v.label, solved, *trials, s.Mean, s.Max)
	}
	if err := tel.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ablation: closing telemetry:", err)
	}
	if wd := tel.Watchdog(); wd.Diverged() {
		fmt.Fprintf(os.Stderr, "ablation: watchdog: %d numeric alerts across the sweep\n", wd.AlertCount())
	}
	if *manifestPath != "" {
		labels := make([]string, len(variants))
		for i, v := range variants {
			labels[i] = v.label
		}
		m := obs.NewManifest()
		m.Start = start
		m.End = time.Now()
		m.Hidden = *hidden
		m.Trials = *trials
		m.Config = map[string]any{
			"sweep":    *sweep,
			"configs":  labels,
			"episodes": *episodes,
			"design":   qnet.VariantOSELML2Lipschitz.String(),
		}
		m.EventsPath = *eventsPath
		m.Extra = map[string]string{"tool": "ablation"}
		if emitter.Enabled() {
			snap := emitter.Metrics().Snapshot()
			m.Metrics = &snap
		}
		if err := cli.WriteManifestFile(*manifestPath, m); err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		fmt.Println("Sweep manifest written to", *manifestPath)
	}
}

// runWordlength is the fixed-point precision ablation: the FPGA design at
// each format, plus the float64 OS-ELM-L2-Lipschitz reference (the same
// algorithm the FPGA core quantizes). Returns the config labels for the
// manifest. The FPGA rows report the datapath's own accounting —
// quantization error per op, saturation rate and Eq. 5 denominator-guard
// trips — averaged over trials; accounting is free to the modelled
// hardware, so the learning results are unchanged by measuring them.
func runWordlength(formats []fixed.QFormat, hidden, trials, episodes int, emitter *obs.Emitter, profile bool) []string {
	fmt.Printf("Ablation sweep \"wordlength\" — FPGA design vs float64 reference, %d hidden units, %d trials x %d episodes\n\n",
		hidden, trials, episodes)
	fmt.Printf("%-14s %-8s %-10s %-12s %-12s %-10s %-6s\n",
		"config", "solved", "mean-eps", "bestMA mean", "qerr/op", "sat_rate", "guard")

	type rowCfg struct {
		label  string
		format fixed.QFormat // zero Frac + fpga=false means float64 reference
		fpga   bool
	}
	rows := make([]rowCfg, 0, len(formats)+1)
	for _, q := range formats {
		rows = append(rows, rowCfg{label: q.String(), format: q, fpga: true})
	}
	rows = append(rows, rowCfg{label: "float64 (ref)"})

	labels := make([]string, 0, len(rows))
	for _, rc := range rows {
		labels = append(labels, rc.label)
		bests := make([]float64, 0, trials)
		solved, solvedEps := 0, 0
		var qerrPerOp, satRate float64
		var guardTrips int64
		accounted := 0
		for i := 0; i < trials; i++ {
			var (
				agent harness.Agent
				err   error
			)
			if rc.fpga {
				agent, err = harness.NewAgentQ(harness.DesignFPGA, 4, 2, hidden, uint64(i)+1, rc.format)
			} else {
				agent, err = harness.NewAgent(harness.DesignOSELML2Lipschitz, 4, 2, hidden, uint64(i)+1)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ablation:", err)
				os.Exit(1)
			}
			if fa, ok := agent.(*fpga.Agent); ok && !emitter.Enabled() {
				// Telemetry is off, but the numeric-health columns need the
				// core's accounting: a sink-less emitter turns it on at the
				// cost of a few integer adds per op and nothing else.
				fa.SetObserver(obs.NewEmitter(nil))
			}
			task := env.NewShaped(env.NewCartPoleV0(uint64(i)+101), env.RewardSurvival)
			runCfg := harness.RunConfigFor(harness.DesignFPGA, harness.Defaults())
			runCfg.MaxEpisodes = episodes
			runCfg.DeviceProfile = profile
			runCfg.Obs = emitter.With(map[string]string{
				"config": rc.label,
				"trial":  strconv.Itoa(i),
			})
			res := harness.Run(agent, task, runCfg)
			best := 0.0
			for _, p := range res.Curve {
				if p.MovingAvg > best {
					best = p.MovingAvg
				}
			}
			bests = append(bests, best)
			if res.Solved {
				solved++
				solvedEps += res.Episodes
			}
			if fa, ok := agent.(*fpga.Agent); ok && fa.Core().AccountingEnabled() {
				core := fa.Core()
				var total fixed.Acct
				core.PredictAcct().AddTo(&total)
				core.SeqTrainAcct().AddTo(&total)
				if total.Ops > 0 {
					qerrPerOp += total.QuantErrAbs / float64(total.Ops)
					satRate += total.SaturationRate()
					accounted++
				}
				guardTrips += core.DenomGuardTrips()
			}
		}
		s := stats.Summarize(bests)
		meanEps := "-"
		if solved > 0 {
			meanEps = strconv.Itoa(solvedEps / solved)
		}
		if accounted > 0 {
			fmt.Printf("%-14s %d/%-6d %-10s %-12.1f %-12.3e %-10.2e %-6d\n",
				rc.label, solved, trials, meanEps, s.Mean,
				qerrPerOp/float64(accounted), satRate/float64(accounted), guardTrips)
		} else {
			fmt.Printf("%-14s %d/%-6d %-10s %-12.1f %-12s %-10s %-6s\n",
				rc.label, solved, trials, meanEps, s.Mean, "-", "-", "-")
		}
	}
	return labels
}
