// Command timetocomplete regenerates paper Figures 5 and 6: the execution
// time to complete CartPole-v0, broken down by phase (seq_train,
// predict_seq, init_train, predict_init, train_DQN, predict_1,
// predict_32), for the seven designs across hidden widths, using the
// calibrated device-time model (DESIGN.md §5). With -speedup it prints the
// §4.4 headline "Nx faster than DQN" comparisons; with -design fpga it
// narrows to the Figure 6 detail. Regeneration target for experiments
// E4-E6 in DESIGN.md.
//
// Usage:
//
//	go run ./cmd/timetocomplete -hidden 32 -trials 3
//	go run ./cmd/timetocomplete -hidden 32,64 -designs FPGA -trials 5
//	go run ./cmd/timetocomplete -hidden 64 -speedup -out results
//	go run ./cmd/timetocomplete -events sweep.jsonl -manifest sweep.json
//
// With -events every trial of every design streams structured run events
// into one JSONL log, labeled by design/trial/seed (see cmd/runlog);
// -manifest records the sweep parameters and aggregated metrics; -serve
// exposes live Prometheus /metrics while the sweep runs; -trace writes a
// Chrome/Perfetto trace-event timeline of every trial's phases at exit;
// -pprof serves net/http/pprof for live profiling ("serve" mounts it on
// the -serve address).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/timing"
	"oselmrl/internal/trace"
)

func main() {
	hiddenFlag := flag.String("hidden", "32", "comma-separated hidden widths")
	designsFlag := flag.String("designs", "", "comma-separated designs (default: all seven)")
	trials := flag.Int("trials", 3, "trials per design (best solved trial is reported)")
	maxEpisodes := flag.Int("episodes", 20000, "episode cutoff per trial (paper: 50000)")
	dqnEpisodes := flag.Int("dqn-episodes", 3000, "episode cutoff for the slow DQN baseline")
	seed := flag.Uint64("seed", 1, "base seed")
	speedup := flag.Bool("speedup", false, "print the paper's §4.4 speedup table")
	report := flag.String("report", "best", "aggregate solved trials: best | mean (the paper reports means over 100 trials)")
	outDir := flag.String("out", "", "directory for CSV output")
	eventsPath := flag.String("events", "", "write a merged JSONL run-event log to this file ('-' for stderr)")
	manifestPath := flag.String("manifest", "", "write a JSON sweep manifest to this file")
	serveAddr := flag.String("serve", "", "serve live telemetry (/metrics, /healthz, /snapshot, /trace) on this address")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON timeline to this file at exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060), or 'serve' to mount it on the -serve address")
	watchdog := flag.Bool("watchdog", false, "enable the divergence watchdog (numeric_alert events, /health on -serve)")
	profile := flag.Bool("profile", false, "enable the FPGA device-level cycle profiler (fpga_cycles/fpga_bram_access metrics, device_profile events; FPGA rows only)")
	qformatName := flag.String("qformat", "Q20", "fixed-point format for the FPGA design's datapath (Q16..Q24; FPGA rows only)")
	coresFlag := flag.Int("cores", 1, "fleet projection: modelled cores per device for the FPGA rows, capped by the resource estimator (FPGA rows only)")
	devicesFlag := flag.Int("devices", 1, "fleet projection: replicated devices (see -cores)")
	flag.Parse()

	qformat, err := cli.ParseQFormat(*qformatName)
	if err != nil {
		fail(err)
	}

	tel, err := cli.StartTelemetry(cli.TelemetryFlags{
		Events: *eventsPath, Serve: *serveAddr, Trace: *tracePath, Pprof: *pprofAddr,
		Watchdog: *watchdog, Profile: *profile,
	})
	if err != nil {
		fail(err)
	}
	emitter := tel.Emitter

	sizes, err := cli.ParseIntList(*hiddenFlag)
	if err != nil {
		fail(err)
	}
	designs := harness.AllDesigns
	if *designsFlag != "" {
		designs = nil
		for _, name := range strings.Split(*designsFlag, ",") {
			d, err := harness.ParseDesign(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			designs = append(designs, d)
		}
	}

	start := time.Now()
	var rows []trace.BreakdownRow
	var fleetRows []fleetProjectionRow
	for _, hidden := range sizes {
		for _, d := range designs {
			row, results := runDesign(d, hidden, *trials, *maxEpisodes, *dqnEpisodes, *seed, *report, qformat, emitter, tel.Profile)
			rows = append(rows, row)
			if d == harness.DesignFPGA && (*coresFlag > 1 || *devicesFlag > 1) {
				if fr, ok := projectFPGAFleet(hidden, *coresFlag, *devicesFlag, results); ok {
					fleetRows = append(fleetRows, fr)
				}
			}
		}
	}
	if err := tel.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "timetocomplete: closing telemetry:", err)
	}
	if wd := tel.Watchdog(); wd.Diverged() {
		fmt.Fprintf(os.Stderr, "timetocomplete: watchdog: %d numeric alerts across the sweep\n", wd.AlertCount())
	}

	if *manifestPath != "" {
		m := obs.NewManifest()
		m.Start = start
		m.End = time.Now()
		m.BaseSeed = *seed
		m.Trials = *trials
		m.QFormat = qformat.String()
		m.Config = map[string]any{
			"hidden":       sizes,
			"designs":      designs,
			"episodes":     *maxEpisodes,
			"dqn_episodes": *dqnEpisodes,
			"report":       *report,
			"qformat":      qformat.String(),
		}
		m.EventsPath = *eventsPath
		m.Extra = map[string]string{"tool": "timetocomplete"}
		if emitter.Enabled() {
			snap := emitter.Metrics().Snapshot()
			m.Metrics = &snap
		}
		if err := cli.WriteManifestFile(*manifestPath, m); err != nil {
			fail(err)
		}
		fmt.Println("Sweep manifest written to", *manifestPath)
	}

	fmt.Print(trace.FormatBreakdownTable(rows))
	if len(fleetRows) > 0 {
		fmt.Printf("\nFleet projection — FPGA trials as population members on %d device(s) (discrete-event model):\n",
			*devicesFlag)
		for _, fr := range fleetRows {
			fmt.Printf("  hidden %3d: %2d cores/device (cap %d, bound by %s): %.4fs sequential -> %.4fs fleet (speedup %.2f)\n",
				fr.hidden, fr.cores, fr.cap, fr.binding,
				fr.proj.SequentialSeconds, fr.proj.FleetSeconds, fr.proj.Speedup)
		}
		fmt.Println()
	}
	if *speedup {
		fmt.Println("Speedups vs DQN (paper §4.4):")
		fmt.Print(trace.SpeedupTable(rows))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*outDir, "time_to_complete.csv"))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := trace.WriteBreakdownCSV(f, rows); err != nil {
			fail(err)
		}
		fmt.Println("CSV written to", *outDir)
	}
}

// fleetProjectionRow is one FPGA design point's multi-core projection.
type fleetProjectionRow struct {
	hidden, cores, cap int
	binding            string
	proj               *harness.FleetProjection
}

// projectFPGAFleet feeds the measured per-trial counters of one FPGA
// design point into the discrete-event fleet simulator: each trial
// becomes a population member, cores is clamped to the Table 3 resource
// cap. ok is false when no trial produced counters or the core does not
// fit the device.
func projectFPGAFleet(hidden, cores, devices int, results []*harness.Result) (fleetProjectionRow, bool) {
	u := fpga.EstimateResources(5, hidden)
	if !u.Feasible {
		return fleetProjectionRow{}, false
	}
	coreCap, binding := fpga.CoresPerDevice(u, fpga.XC7Z020)
	if cores > coreCap {
		cores = coreCap
	}
	var measured []*harness.Result
	for _, r := range results {
		if r != nil && r.Counters != nil {
			measured = append(measured, r)
		}
	}
	if len(measured) == 0 {
		return fleetProjectionRow{}, false
	}
	return fleetProjectionRow{
		hidden: hidden, cores: cores, cap: coreCap, binding: binding,
		proj: harness.ProjectFleet(measured, cores, devices, 0),
	}, true
}

// runDesign runs trials of one design at one hidden width. With
// report=best it returns the fastest solved trial's breakdown (stabler at
// small trial counts); with report=mean it averages the breakdowns of all
// solved trials, matching the paper's 100-trial (20 for FPGA) means. If no
// trial solved, the first trial is reported as NOT SOLVED. qformat applies
// to FPGA rows only (the software designs run in float64). The raw trial
// results ride along so callers can feed them to the fleet projector.
func runDesign(d harness.Design, hidden, trials, maxEpisodes, dqnEpisodes int, seed uint64, report string, qformat fixed.QFormat, emitter *obs.Emitter, profile bool) (trace.BreakdownRow, []*harness.Result) {
	budget := maxEpisodes
	if d == harness.DesignDQN {
		budget = dqnEpisodes
	}
	rowFormat := fixed.QFormat{}
	if d == harness.DesignFPGA {
		rowFormat = qformat
	}
	spec := harness.TrialSpec{
		MakeAgent: func(s uint64) (harness.Agent, error) {
			return harness.NewAgentQ(d, 4, 2, hidden, s, rowFormat)
		},
		MakeEnv: func(s uint64) env.Env {
			return env.NewShaped(env.NewCartPoleV0(s+1000), env.RewardSurvival)
		},
		Config: func() harness.Config {
			c := harness.RunConfigFor(d, harness.Defaults())
			c.MaxEpisodes = budget
			c.RecordCurve = false
			c.Obs = emitter.With(map[string]string{"hidden": fmt.Sprint(hidden)})
			c.DeviceProfile = profile
			return c
		}(),
		Trials:   trials,
		BaseSeed: seed,
	}
	results := harness.RunTrials(spec)
	row := trace.BreakdownRow{Design: string(d), Hidden: hidden}

	if report == "mean" {
		// Average breakdowns over the solved trials.
		sum := make(timing.Breakdown)
		solved, episodes := 0, 0
		for _, r := range results {
			if r == nil || r.Counters == nil || !r.Solved {
				continue
			}
			solved++
			episodes += r.Episodes
			for p, v := range harness.Breakdown(d, r.Counters) {
				sum[p] += v
			}
		}
		if solved > 0 {
			for p := range sum {
				sum[p] /= float64(solved)
			}
			row.Breakdown = sum
			row.Solved = true
			row.Episodes = episodes / solved
			return row, results
		}
		// Fall through to report the first unsolved trial.
	}

	best := -1
	for i, r := range results {
		if r == nil || r.Counters == nil {
			continue
		}
		if r.Solved {
			if best < 0 || !results[best].Solved ||
				harness.Breakdown(d, r.Counters).Total() < harness.Breakdown(d, results[best].Counters).Total() {
				best = i
			}
		} else if best < 0 {
			best = i
		}
	}
	if best >= 0 {
		r := results[best]
		row.Breakdown = harness.Breakdown(d, r.Counters)
		row.Solved = r.Solved
		row.Episodes = r.Episodes
	}
	return row, results
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "timetocomplete:", err)
	os.Exit(2)
}
