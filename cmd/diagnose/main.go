// Command diagnose trains an ELM/OS-ELM design while sampling the
// stability diagnostics of §3.3/§4.3 — σmax(β), ‖β‖_F, the Lipschitz
// bound, P's effective learning rate and the worst probe-state |Q| — and
// prints them alongside the learning curve. It makes the paper's
// qualitative story measurable: watch plain OS-ELM's σmax(β) and Q
// outliers blow up while the L2-Lipschitz variant stays bounded.
//
// Usage:
//
//	go run ./cmd/diagnose -design OS-ELM -episodes 600
//	go run ./cmd/diagnose -design OS-ELM-L2-Lipschitz -episodes 600
//	go run ./cmd/diagnose -design OS-ELM -watchdog
//	go run ./cmd/diagnose -design FPGA -qformat Q16
//
// With -watchdog the divergence watchdog evaluates the same run and the
// tripped rules are printed at the end — the online counterpart to the
// sampled table. With -design FPGA the table switches to the fixed-point
// health diagnostics of the quantized datapath (saturation rate,
// quantization error per op, denominator-guard trips) and -qformat
// selects the Qm.f format under test.
package main

import (
	"flag"
	"fmt"
	"os"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

func main() {
	designName := flag.String("design", "OS-ELM", "ELM/OS-ELM design (or FPGA) to diagnose")
	hidden := flag.Int("hidden", 32, "hidden width")
	episodes := flag.Int("episodes", 600, "episodes to run")
	every := flag.Int("every", 50, "episodes between diagnostic samples")
	seed := flag.Uint64("seed", 1, "seed")
	watchdog := flag.Bool("watchdog", false, "run the divergence watchdog alongside the sampled diagnostics")
	qformatName := flag.String("qformat", "Q20", "fixed-point format of the FPGA datapath (FPGA design only)")
	flag.Parse()

	d, err := harness.ParseDesign(*designName)
	if err != nil {
		fail(err)
	}
	qformat, err := cli.ParseQFormat(*qformatName)
	if err != nil {
		fail(err)
	}
	a, err := harness.NewAgentQ(d, 4, 2, *hidden, *seed, qformat)
	if err != nil {
		fail(err)
	}
	task := env.NewShaped(env.NewCartPoleV0(*seed+100), env.RewardSurvival)
	if fa, ok := a.(*fpga.Agent); ok {
		diagnoseFPGA(fa, task, *episodes, *every, *watchdog)
		return
	}
	agent, ok := a.(*qnet.Agent)
	if !ok {
		fail(fmt.Errorf("diagnose supports the ELM/OS-ELM designs and FPGA, not %s", d))
	}

	var wd *obs.Watchdog
	if *watchdog {
		wd = obs.NewWatchdog(obs.DefaultWatchdogConfig())
		emitter := obs.NewEmitter(nil)
		emitter.SetWatchdog(wd)
		agent.SetObserver(emitter)
	}

	// Probe states: a fixed random sample of plausible CartPole states.
	probeRNG := rng.New(42)
	probes := make([][]float64, 32)
	for i := range probes {
		probes[i] = []float64{
			probeRNG.Uniform(-2.4, 2.4),
			probeRNG.Uniform(-3, 3),
			probeRNG.Uniform(-0.2, 0.2),
			probeRNG.Uniform(-3, 3),
		}
	}

	fmt.Printf("Stability diagnostics: %s, %d hidden units (paper §3.3/§4.3)\n\n", d, *hidden)
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-12s %-10s\n",
		"episode", "avg100", "sigma(B)", "||B||_F", "gainTr(P)", "max|P|", "max|Q|")

	window := make([]float64, 0, *episodes)
	for ep := 1; ep <= *episodes; ep++ {
		s := task.Reset()
		steps := 0
		for {
			act := agent.SelectAction(s)
			ns, r, done := task.Step(act)
			if err := agent.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				fmt.Println("update error (continuing):", err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		agent.EndEpisode(ep)
		window = append(window, float64(steps))
		if ep%*every == 0 {
			n := 100
			if len(window) < n {
				n = len(window)
			}
			sum := 0.0
			for _, v := range window[len(window)-n:] {
				sum += v
			}
			diag := agent.Snapshot(ep, probes)
			fmt.Printf("%-8d %-8.1f %-10.3f %-10.3f %-10.4f %-12.3f %-10.3f\n",
				ep, sum/float64(n), diag.BetaSigmaMax, diag.BetaFrobenius,
				diag.GainTrace, diag.PMaxAbs, diag.QProbeMax)
		}
	}
	final := agent.Snapshot(*episodes, probes)
	fmt.Printf("\nLipschitz bound σmax(α)·Lip(G)·σmax(β) = %.3f (σmax(α) = %.3f)\n",
		final.LipschitzBound, final.AlphaSigmaMax)
	fmt.Println("Relation 13 check: σmax(β) <= ||β||_F:",
		final.BetaSigmaMax <= final.BetaFrobenius+1e-9)

	if wd != nil {
		if wd.Diverged() {
			fmt.Printf("\nWatchdog: DIVERGED (%d alerts)\n", wd.AlertCount())
			for _, al := range wd.Alerts() {
				fmt.Printf("  %s on %s: value %g vs threshold %g (%d violations)\n",
					al.Rule, al.Metric, al.Value, al.Threshold, al.Count)
			}
		} else {
			fmt.Println("\nWatchdog: healthy (zero alerts)")
		}
	}
}

// diagnoseFPGA runs the fixed-point health table for the quantized
// datapath: learning progress next to the numeric-health accounting the
// Qm.f format determines (saturation rate and quantization error of the
// seq_train module, plus Eq. 5 denominator-guard trips). The observer is
// a disabled emitter — it costs nothing but switches the core's
// accounting on, and survives the 300-episode reset rule because
// Reinitialize re-arms accounting whenever an observer is installed.
func diagnoseFPGA(agent *fpga.Agent, task env.Env, episodes, every int, watchdog bool) {
	emitter := obs.NewEmitter(nil)
	var wd *obs.Watchdog
	if watchdog {
		wd = obs.NewWatchdog(obs.DefaultWatchdogConfig())
		emitter.SetWatchdog(wd)
	}
	agent.SetObserver(emitter)

	q := agent.Format()
	fmt.Printf("Fixed-point health diagnostics: FPGA design, %s datapath, %d hidden units\n\n",
		q, agent.Core().HiddenSize())
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-10s %-12s %-6s\n",
		"episode", "avg100", "||B||_F", "gainTr(P)", "max|P|", "sat(seq)", "qerr/op", "guard")

	window := make([]float64, 0, episodes)
	for ep := 1; ep <= episodes; ep++ {
		s := task.Reset()
		steps := 0
		for {
			act := agent.SelectAction(s)
			ns, r, done := task.Step(act)
			if err := agent.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				fmt.Println("update error (continuing):", err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		agent.EndEpisode(ep)
		window = append(window, float64(steps))
		if ep%every == 0 {
			n := 100
			if len(window) < n {
				n = len(window)
			}
			sum := 0.0
			for _, v := range window[len(window)-n:] {
				sum += v
			}
			core := agent.Core()
			sa := core.SeqTrainAcct()
			qerr := 0.0
			if sa != nil && sa.Ops > 0 {
				qerr = sa.QuantErrAbs / float64(sa.Ops)
			}
			hid := core.HiddenSize()
			fmt.Printf("%-8d %-8.1f %-10.3f %-10.4f %-10.3f %-10.2e %-12.3e %-6d\n",
				ep, sum/float64(n), core.Beta.FrobeniusNorm(),
				core.P.Trace()/float64(hid), maxAbs(core.P),
				sa.SaturationRate(), qerr, core.DenomGuardTrips())
		}
	}

	fmt.Printf("\nFormat: %s (resolution %.3g, max %.6g; storage and cycles are format-invariant)\n",
		q, q.Resolution(), q.MaxValue())
	if wd != nil {
		if wd.Diverged() {
			fmt.Printf("\nWatchdog: DIVERGED (%d alerts)\n", wd.AlertCount())
			for _, al := range wd.Alerts() {
				fmt.Printf("  %s on %s: value %g vs threshold %g (%d violations)\n",
					al.Rule, al.Metric, al.Value, al.Threshold, al.Count)
			}
		} else {
			fmt.Println("\nWatchdog: healthy (zero alerts)")
		}
	}
}

// maxAbs returns the largest |element| of m in real value units.
func maxAbs(m *fixed.Matrix) float64 {
	q := m.Format()
	var worst float64
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			v := q.Float(m.At(i, j))
			if v < 0 {
				v = -v
			}
			if v > worst {
				worst = v
			}
		}
	}
	return worst
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
