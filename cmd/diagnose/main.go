// Command diagnose trains an ELM/OS-ELM design while sampling the
// stability diagnostics of §3.3/§4.3 — σmax(β), ‖β‖_F, the Lipschitz
// bound, P's effective learning rate and the worst probe-state |Q| — and
// prints them alongside the learning curve. It makes the paper's
// qualitative story measurable: watch plain OS-ELM's σmax(β) and Q
// outliers blow up while the L2-Lipschitz variant stays bounded.
//
// Usage:
//
//	go run ./cmd/diagnose -design OS-ELM -episodes 600
//	go run ./cmd/diagnose -design OS-ELM-L2-Lipschitz -episodes 600
//	go run ./cmd/diagnose -design OS-ELM -watchdog
//
// With -watchdog the divergence watchdog evaluates the same run and the
// tripped rules are printed at the end — the online counterpart to the
// sampled table.
package main

import (
	"flag"
	"fmt"
	"os"

	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/obs"
	"oselmrl/internal/qnet"
	"oselmrl/internal/replay"
	"oselmrl/internal/rng"
)

func main() {
	designName := flag.String("design", "OS-ELM", "ELM/OS-ELM design to diagnose")
	hidden := flag.Int("hidden", 32, "hidden width")
	episodes := flag.Int("episodes", 600, "episodes to run")
	every := flag.Int("every", 50, "episodes between diagnostic samples")
	seed := flag.Uint64("seed", 1, "seed")
	watchdog := flag.Bool("watchdog", false, "run the divergence watchdog alongside the sampled diagnostics")
	flag.Parse()

	d, err := harness.ParseDesign(*designName)
	if err != nil {
		fail(err)
	}
	a, err := harness.NewAgent(d, 4, 2, *hidden, *seed)
	if err != nil {
		fail(err)
	}
	agent, ok := a.(*qnet.Agent)
	if !ok {
		fail(fmt.Errorf("diagnose supports the ELM/OS-ELM designs, not %s", d))
	}
	task := env.NewShaped(env.NewCartPoleV0(*seed+100), env.RewardSurvival)

	var wd *obs.Watchdog
	if *watchdog {
		wd = obs.NewWatchdog(obs.DefaultWatchdogConfig())
		emitter := obs.NewEmitter(nil)
		emitter.SetWatchdog(wd)
		agent.SetObserver(emitter)
	}

	// Probe states: a fixed random sample of plausible CartPole states.
	probeRNG := rng.New(42)
	probes := make([][]float64, 32)
	for i := range probes {
		probes[i] = []float64{
			probeRNG.Uniform(-2.4, 2.4),
			probeRNG.Uniform(-3, 3),
			probeRNG.Uniform(-0.2, 0.2),
			probeRNG.Uniform(-3, 3),
		}
	}

	fmt.Printf("Stability diagnostics: %s, %d hidden units (paper §3.3/§4.3)\n\n", d, *hidden)
	fmt.Printf("%-8s %-8s %-10s %-10s %-10s %-12s %-10s\n",
		"episode", "avg100", "sigma(B)", "||B||_F", "gainTr(P)", "max|P|", "max|Q|")

	window := make([]float64, 0, *episodes)
	for ep := 1; ep <= *episodes; ep++ {
		s := task.Reset()
		steps := 0
		for {
			act := agent.SelectAction(s)
			ns, r, done := task.Step(act)
			if err := agent.Observe(replay.Transition{State: s, Action: act, Reward: r, NextState: ns, Done: done}); err != nil {
				fmt.Println("update error (continuing):", err)
			}
			s = ns
			steps++
			if done {
				break
			}
		}
		agent.EndEpisode(ep)
		window = append(window, float64(steps))
		if ep%*every == 0 {
			n := 100
			if len(window) < n {
				n = len(window)
			}
			sum := 0.0
			for _, v := range window[len(window)-n:] {
				sum += v
			}
			diag := agent.Snapshot(ep, probes)
			fmt.Printf("%-8d %-8.1f %-10.3f %-10.3f %-10.4f %-12.3f %-10.3f\n",
				ep, sum/float64(n), diag.BetaSigmaMax, diag.BetaFrobenius,
				diag.GainTrace, diag.PMaxAbs, diag.QProbeMax)
		}
	}
	final := agent.Snapshot(*episodes, probes)
	fmt.Printf("\nLipschitz bound σmax(α)·Lip(G)·σmax(β) = %.3f (σmax(α) = %.3f)\n",
		final.LipschitzBound, final.AlphaSigmaMax)
	fmt.Println("Relation 13 check: σmax(β) <= ||β||_F:",
		final.BetaSigmaMax <= final.BetaFrobenius+1e-9)

	if wd != nil {
		if wd.Diverged() {
			fmt.Printf("\nWatchdog: DIVERGED (%d alerts)\n", wd.AlertCount())
			for _, al := range wd.Alerts() {
				fmt.Printf("  %s on %s: value %g vs threshold %g (%d violations)\n",
					al.Rule, al.Metric, al.Value, al.Threshold, al.Count)
			}
		} else {
			fmt.Println("\nWatchdog: healthy (zero alerts)")
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "diagnose:", err)
	os.Exit(1)
}
