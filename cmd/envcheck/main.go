// Command envcheck validates the environment substrate against paper
// Table 2 and prints the inventory of available tasks. It is the
// regeneration target for experiment E1 in DESIGN.md.
//
// Usage:
//
//	go run ./cmd/envcheck
package main

import (
	"fmt"
	"math"
	"os"

	"oselmrl/internal/env"
)

func main() {
	fmt.Println("Paper Table 2 — CartPole-v0 simulation environment")
	fmt.Println("Parameter             Min        Max")
	c := env.NewCartPoleV0(1)
	low, high := c.ObservationBounds()
	names := []string{"Cart position", "Cart velocity", "Pole angle (rad)", "Pole velocity at tip"}
	for i, n := range names {
		fmt.Printf("%-21s %-10s %-10s\n", n, fmtBound(low[i]), fmtBound(high[i]))
	}
	fmt.Printf("\nTermination: |x| > %.1f or |theta| > %.4f rad (12 deg); step cap %d\n",
		env.CartPositionLimit, env.PoleAngleLimitRad, c.MaxSteps())
	fmt.Printf("Note: the paper prints the angle bound as \"41.8 deg\"; it is 0.418 rad\n")
	fmt.Printf("      (= 2x the 12 deg termination threshold, Gym's observation bound).\n\n")

	fmt.Println("Environment inventory:")
	envs := []env.Env{
		env.NewCartPoleV0(1), env.NewCartPoleV1(1), env.NewMountainCar(1),
		env.NewAcrobot(1), env.NewGridWorld(5, 1), env.NewPendulum(1),
	}
	ok := true
	for _, e := range envs {
		obs := e.Reset()
		if len(obs) != e.ObservationSize() {
			ok = false
		}
		fmt.Printf("  %-22s obs=%d actions=%d max_steps=%d\n",
			e.Name(), e.ObservationSize(), e.ActionCount(), e.MaxSteps())
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "envcheck: observation shape mismatch")
		os.Exit(1)
	}
	fmt.Println("\nAll environments validated.")
}

func fmtBound(v float64) string {
	if math.IsInf(v, -1) {
		return "-inf"
	}
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3f", v)
}
