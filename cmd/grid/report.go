package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"oselmrl/internal/ledger"
	"oselmrl/internal/timing"
	"oselmrl/internal/trace"
	"oselmrl/internal/vcs"
)

// The paper-ready artifacts regenerated from the ledger after every run.
// The three tables are pure functions of the ledger's cell records (no
// timestamps, stable ordering), so re-running a finished grid rewrites
// them byte for byte; their digests are sealed in a report record. The
// JSON report carries a generation timestamp for tooling and is therefore
// NOT digested.
const (
	successTableFile    = "success_rate.txt"
	timeToCompleteFile  = "time_to_complete.csv"
	wordlengthTableFile = "wordlength.txt"
	reportFile          = "grid_report.json"
)

// reportCell is one grid point in grid_report.json — the unit cmd/grid
// -compare matches on (by ID).
type reportCell struct {
	ID         string             `json:"id"`
	ConfigHash string             `json:"config_hash"`
	Verdict    string             `json:"verdict"`
	Metrics    map[string]float64 `json:"metrics"`
}

// gridReport is the machine-readable grid outcome backing -compare
// regression gating, in the spirit of cmd/bench's snapshot/-compare pair.
type gridReport struct {
	SchemaVersion int          `json:"schema_version"`
	Matrix        string       `json:"matrix"`
	GitSHA        string       `json:"git_sha"`
	GitDirty      bool         `json:"git_dirty,omitempty"`
	LedgerHead    string       `json:"ledger_head"`
	Generated     time.Time    `json:"generated"`
	Cells         []reportCell `json:"cells"`
}

// latestCells returns the newest record per config hash, ordered by cell
// label — the deterministic view of "the grid's current results" behind
// every table.
func latestCells(records []ledger.Record) []ledger.Record {
	latest := map[string]ledger.Record{}
	for _, r := range records {
		if r.Kind == ledger.KindCell && r.ConfigHash != "" {
			latest[r.ConfigHash] = r
		}
	}
	out := make([]ledger.Record, 0, len(latest))
	for _, r := range latest {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cell != out[j].Cell {
			return out[i].Cell < out[j].Cell
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// writeReports regenerates the paper tables and the JSON report from the
// ledger, then seals the deterministic tables' digests in a report record
// — only when they changed since the last seal, so an all-skipped re-run
// appends nothing and the ledger converges.
func writeReports(l *ledger.Ledger, m *Matrix, outDir, artifactRoot string, git vcs.Info) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	cells := latestCells(l.Records())

	if err := writeText(filepath.Join(outDir, successTableFile), successTable(cells)); err != nil {
		return err
	}
	if err := writeText(filepath.Join(outDir, timeToCompleteFile), timeToCompleteCSV(cells)); err != nil {
		return err
	}
	if err := writeText(filepath.Join(outDir, wordlengthTableFile), wordlengthTable(cells)); err != nil {
		return err
	}

	var arts []ledger.Artifact
	for _, name := range []string{successTableFile, timeToCompleteFile, wordlengthTableFile} {
		full := filepath.Join(outDir, name)
		digest, err := ledger.HashFile(full)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(artifactRoot, full)
		if err != nil {
			rel = full
		}
		arts = append(arts, ledger.Artifact{Path: filepath.ToSlash(rel), SHA256: digest})
	}
	if !sameArtifacts(lastReportArtifacts(l.Records()), arts) {
		if _, err := l.Append(ledger.Record{
			Kind:      ledger.KindReport,
			Time:      time.Now().UTC().Format(time.RFC3339),
			Cell:      m.Name,
			GitSHA:    git.SHA,
			GitDirty:  git.Dirty,
			Artifacts: arts,
		}); err != nil {
			return err
		}
	}

	report := gridReport{
		SchemaVersion: 1,
		Matrix:        m.Name,
		GitSHA:        git.SHA,
		GitDirty:      git.Dirty,
		LedgerHead:    l.Head(),
		Generated:     time.Now().UTC(),
	}
	for _, r := range cells {
		report.Cells = append(report.Cells, reportCell{
			ID: r.Cell, ConfigHash: r.ConfigHash, Verdict: r.Verdict, Metrics: r.Metrics,
		})
	}
	return writeJSON(filepath.Join(outDir, reportFile), report)
}

func lastReportArtifacts(records []ledger.Record) []ledger.Artifact {
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].Kind == ledger.KindReport {
			return records[i].Artifacts
		}
	}
	return nil
}

func sameArtifacts(a, b []ledger.Artifact) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// successTable renders the per-cell success rates (the paper's Table 2
// shape): one row per grid point, solved trials over trials plus the
// episodes-to-solve statistics.
func successTable(cells []ledger.Record) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %-9s %10s %14s %14s\n",
		"cell", "verdict", "solved", "mean_episodes", "std_episodes")
	for _, r := range cells {
		solved := fmt.Sprintf("%.0f/%.0f", r.Metrics["solved_trials"], r.Metrics["trials"])
		mean, std := "-", "-"
		if r.Metrics["solved_trials"] > 0 {
			mean = fmt.Sprintf("%.1f", r.Metrics["mean_episodes"])
			std = fmt.Sprintf("%.1f", r.Metrics["std_episodes"])
		}
		fmt.Fprintf(&sb, "%-44s %-9s %10s %14s %14s\n", r.Cell, r.Verdict, solved, mean, std)
	}
	return sb.String()
}

// timeToCompleteCSV renders the Figure 5/6-style modelled execution-time
// breakdown, one row per grid point, via the shared CSV schema
// (trace.WriteBreakdownCSV) so existing plot tooling reads it unchanged.
func timeToCompleteCSV(cells []ledger.Record) string {
	var rows []trace.BreakdownRow
	for _, r := range cells {
		bd := timing.Breakdown{}
		for k, v := range r.Metrics {
			if phase, ok := strings.CutPrefix(k, "sec_"); ok && phase != "total" && phase != "solved_mean" {
				bd[timing.Phase(phase)] = v
			}
		}
		rows = append(rows, trace.BreakdownRow{
			Design:    r.Cell,
			Hidden:    int(r.Metrics["hidden"]),
			Breakdown: bd,
			Solved:    r.Verdict == "solved",
			Episodes:  int(r.Metrics["mean_episodes"]),
		})
	}
	var sb strings.Builder
	if err := trace.WriteBreakdownCSV(&sb, rows); err != nil {
		// strings.Builder cannot fail to write.
		panic(err)
	}
	return sb.String()
}

// wordlengthTable renders the §4.4 fixed-point ablation: the FPGA cells
// grouped by format, showing where narrow wordlengths stop solving.
func wordlengthTable(cells []ledger.Record) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-44s %-9s %10s %14s\n", "cell", "verdict", "solved", "mean_episodes")
	n := 0
	for _, r := range cells {
		if !strings.Contains(r.Cell, "FPGA") {
			continue
		}
		n++
		solved := fmt.Sprintf("%.0f/%.0f", r.Metrics["solved_trials"], r.Metrics["trials"])
		mean := "-"
		if r.Metrics["solved_trials"] > 0 {
			mean = fmt.Sprintf("%.1f", r.Metrics["mean_episodes"])
		}
		fmt.Fprintf(&sb, "%-44s %-9s %10s %14s\n", r.Cell, r.Verdict, solved, mean)
	}
	if n == 0 {
		sb.WriteString("(no FPGA cells in this grid)\n")
	}
	return sb.String()
}

// compareReportFiles loads two grid reports and returns the regressions of
// cur against prev: cells that disappeared, lost solves, or slowed beyond
// the threshold.
func compareReportFiles(prevPath, curPath string, thresholdPct float64) ([]string, error) {
	prev, err := readReport(prevPath)
	if err != nil {
		return nil, err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return nil, err
	}
	return compareReports(prev, cur, thresholdPct), nil
}

func compareReports(prev, cur *gridReport, thresholdPct float64) []string {
	curByID := map[string]reportCell{}
	for _, c := range cur.Cells {
		curByID[c.ID] = c
	}
	var regressions []string
	for _, p := range prev.Cells {
		c, ok := curByID[p.ID]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in prior report, missing now", p.ID))
			continue
		}
		pSolved, cSolved := p.Metrics["solved_trials"], c.Metrics["solved_trials"]
		if cSolved < pSolved {
			regressions = append(regressions,
				fmt.Sprintf("%s: solved trials fell %.0f -> %.0f", p.ID, pSolved, cSolved))
			continue
		}
		pMean, cMean := p.Metrics["mean_episodes"], c.Metrics["mean_episodes"]
		if pSolved > 0 && cSolved > 0 && pMean > 0 {
			pct := (cMean - pMean) / pMean * 100
			if pct > thresholdPct {
				regressions = append(regressions,
					fmt.Sprintf("%s: mean episodes to solve rose %.1f -> %.1f (+%.1f%% > %.1f%%)",
						p.ID, pMean, cMean, pct, thresholdPct))
			}
		}
	}
	return regressions
}

func readReport(path string) (*gridReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r gridReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report %s: %w", path, err)
	}
	return &r, nil
}

func writeText(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
