package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"oselmrl/internal/ledger"
)

// TestMain doubles as the grid binary for the kill-and-resume test: with
// GRID_HELPER set, the test executable runs the real grid entry point on
// the unit-separator-delimited args from GRID_ARGS instead of the suite.
func TestMain(m *testing.M) {
	if os.Getenv("GRID_HELPER") == "1" {
		os.Exit(run(strings.Split(os.Getenv("GRID_ARGS"), "\x1f")))
	}
	os.Exit(m.Run())
}

func writeMatrix(t *testing.T, dir string, m Matrix) string {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMatrixExpansion(t *testing.T) {
	m := Matrix{
		Name: "t", Envs: []string{"cartpole", "gridworld"},
		Designs:  []string{"OS-ELM-L2", "DQN", "FPGA"},
		Hidden:   []int{16, 32},
		QFormats: []string{"Q16", "Q20"},
		Seeds:    3, Episodes: 500, DQNEpisodes: 100,
	}
	cells := m.Cells()
	// Per env: OS-ELM-L2 and DQN get 2 cells each (hidden), FPGA 2*2.
	if want := 2 * (2 + 2 + 4); len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	var dqn, fpga int
	for _, c := range cells {
		switch {
		case c.Design == "DQN":
			dqn++
			if c.Episodes != 100 {
				t.Errorf("DQN cell %s has budget %d, want the dqn_episodes override 100", c.ID(), c.Episodes)
			}
		case c.Design == "FPGA":
			fpga++
			if c.QFormat == "" {
				t.Errorf("FPGA cell %s missing its qformat", c.ID())
			}
		default:
			if c.QFormat != "" {
				t.Errorf("software cell %s carries qformat %s", c.ID(), c.QFormat)
			}
			if c.Episodes != 500 {
				t.Errorf("cell %s has budget %d, want 500", c.ID(), c.Episodes)
			}
		}
	}
	if dqn != 4 || fpga != 8 {
		t.Fatalf("got %d DQN / %d FPGA cells, want 4 / 8", dqn, fpga)
	}

	h1, err := cells[0].ConfigHash()
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := cells[0].ConfigHash()
	if h1 != h2 {
		t.Fatal("config hash is not deterministic")
	}
	mod := cells[0]
	mod.Hidden++
	h3, _ := mod.ConfigHash()
	if h3 == h1 {
		t.Fatal("config hash ignores the hidden width")
	}
}

func TestGridResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	matrix := writeMatrix(t, dir, Matrix{
		Name: "resume", Envs: []string{"cartpole"},
		Designs: []string{"ELM", "OS-ELM-L2"}, Hidden: []int{8},
		Seeds: 1, Episodes: 15,
	})
	out := filepath.Join(dir, "results", "grid")
	led := filepath.Join(dir, "results", "ledger")
	args := []string{"-matrix", matrix, "-out", out, "-ledger", led}

	if code := run(args); code != 0 {
		t.Fatalf("first run exited %d", code)
	}
	records, _, err := ledger.Read(filepath.Join(led, ledger.FileName))
	if err != nil {
		t.Fatal(err)
	}
	firstLen := len(records)
	cellCount := 0
	for _, r := range records {
		if r.Kind == ledger.KindCell {
			cellCount++
		}
	}
	if cellCount != 2 {
		t.Fatalf("first run recorded %d cells, want 2", cellCount)
	}
	tables := map[string][]byte{}
	for _, name := range []string{successTableFile, timeToCompleteFile, wordlengthTableFile} {
		data, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		tables[name] = data
	}

	// Second run: everything is in the ledger, so nothing re-runs, no new
	// records appear (not even a report record — the tables are unchanged)
	// and every table regenerates byte for byte.
	if code := run(args); code != 0 {
		t.Fatalf("second run exited %d", code)
	}
	records, _, err = ledger.Read(filepath.Join(led, ledger.FileName))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != firstLen {
		t.Fatalf("second run grew the ledger %d -> %d records; expected zero re-runs", firstLen, len(records))
	}
	for name, want := range tables {
		got, err := os.ReadFile(filepath.Join(out, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s changed across an all-skipped re-run", name)
		}
	}

	// The ledger (chain, Merkle seals, artifact digests) verifies clean.
	if _, err := ledger.Verify(records, ledger.VerifyOptions{
		ArtifactRoot: filepath.Join(dir, "results"),
	}); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestGridKillResume is the crash-recovery acceptance test: a grid killed
// with SIGKILL mid-matrix must, on re-run, skip the cells that completed
// and execute only the unfinished ones.
func TestGridKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess and trains DQN")
	}
	dir := t.TempDir()
	// Cell order is matrix order: the ELM cell (15-episode budget)
	// finishes in milliseconds, then the DQN cell grinds on a 200k-episode
	// budget — plenty of time to kill the process mid-cell.
	matrix := writeMatrix(t, dir, Matrix{
		Name: "kill", Envs: []string{"cartpole"},
		Designs: []string{"ELM", "DQN"}, Hidden: []int{8},
		Seeds: 1, Episodes: 15, DQNEpisodes: 200000,
	})
	out := filepath.Join(dir, "results", "grid")
	led := filepath.Join(dir, "results", "ledger")
	ledgerPath := filepath.Join(led, ledger.FileName)
	args := []string{"-matrix", matrix, "-out", out, "-ledger", led, "-workers", "1"}

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "GRID_HELPER=1", "GRID_ARGS="+strings.Join(args, "\x1f"))
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the fast cell's record to land (fsynced before the slow
	// cell starts on the single worker), then SIGKILL mid-DQN-training.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if records, _, err := ledger.Read(ledgerPath); err == nil && len(records) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("first cell never reached the ledger")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	records, _, err := ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	cellsBefore := map[string]string{}
	for _, r := range records {
		if r.Kind == ledger.KindCell {
			cellsBefore[r.Cell] = r.Verdict
		}
	}
	if _, ok := cellsBefore["cartpole/ELM/h8"]; !ok {
		t.Fatalf("killed run's ledger lacks the completed cell: %v", cellsBefore)
	}
	if _, ok := cellsBefore["cartpole/DQN/h8"]; ok {
		t.Fatal("the killed-mid-run cell has a verdict; the kill came too late to exercise resume")
	}

	// Resume in-process with a short timeout: only the unfinished DQN cell
	// executes, recording a timeout verdict.
	if code := run(append(args, "-cell-timeout", "2s")); code != 0 {
		t.Fatalf("resume run exited %d", code)
	}
	records, _, err = ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	elm, dqn := 0, 0
	for _, r := range records {
		switch {
		case r.Kind != ledger.KindCell:
		case r.Cell == "cartpole/ELM/h8":
			elm++
		case r.Cell == "cartpole/DQN/h8":
			dqn++
			if r.Verdict != "timeout" {
				t.Errorf("resumed cell verdict = %q, want timeout", r.Verdict)
			}
		}
	}
	if elm != 1 {
		t.Errorf("completed cell ran again on resume (%d records)", elm)
	}
	if dqn != 1 {
		t.Errorf("unfinished cell has %d records after resume, want 1", dqn)
	}
	resumedLen := len(records)

	// Third run: the whole matrix is complete; nothing executes.
	if code := run(args); code != 0 {
		t.Fatalf("third run exited %d", code)
	}
	records, _, err = ledger.Read(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != resumedLen {
		t.Fatalf("third run grew the ledger %d -> %d records; expected zero re-runs", resumedLen, len(records))
	}
	if _, err := ledger.Verify(records, ledger.VerifyOptions{
		ArtifactRoot: filepath.Join(dir, "results"),
	}); err != nil {
		t.Fatalf("Verify after kill-resume: %v", err)
	}
}

func TestCompareReports(t *testing.T) {
	prev := &gridReport{Cells: []reportCell{
		{ID: "a", Metrics: map[string]float64{"solved_trials": 3, "trials": 3, "mean_episodes": 100}},
		{ID: "b", Metrics: map[string]float64{"solved_trials": 2, "trials": 3, "mean_episodes": 200}},
		{ID: "c", Metrics: map[string]float64{"solved_trials": 0, "trials": 3}},
	}}
	cur := &gridReport{Cells: []reportCell{
		{ID: "a", Metrics: map[string]float64{"solved_trials": 3, "trials": 3, "mean_episodes": 105}},
		{ID: "b", Metrics: map[string]float64{"solved_trials": 1, "trials": 3, "mean_episodes": 190}},
		{ID: "c", Metrics: map[string]float64{"solved_trials": 0, "trials": 3}},
	}}
	if regs := compareReports(prev, cur, 10); len(regs) != 1 || !strings.Contains(regs[0], "b:") {
		t.Fatalf("regressions = %v, want exactly the lost solve on b", regs)
	}
	// Tighten the threshold: a's 5% episode increase now regresses too.
	if regs := compareReports(prev, cur, 3); len(regs) != 2 {
		t.Fatalf("regressions at 3%% threshold = %v, want 2", regs)
	}
	// A vanished cell is a regression.
	cur.Cells = cur.Cells[1:]
	if regs := compareReports(prev, cur, 10); len(regs) != 2 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("regressions with missing cell = %v", regs)
	}
}
