// Command grid executes a declared experiment matrix (environments ×
// designs × hidden widths × fixed-point formats × seeds) with bounded
// parallel workers, records every cell verdict in the tamper-evident run
// ledger (internal/ledger), and regenerates the paper-ready tables —
// success rates, time-to-complete breakdown CSV, wordlength ablation —
// from the ledger alone, so a finished grid reproduces its tables byte
// for byte on every re-run.
//
// Usage:
//
//	go run ./cmd/grid -matrix experiments.json
//	go run ./cmd/grid -matrix experiments.json -workers 4 -cell-timeout 10m
//	go run ./cmd/grid -matrix experiments.json -compare results/grid/grid_report.prev.json
//
// Resumability: a cell's full configuration hashes to its ledger resume
// key; cells whose hash already has a verdict are skipped on re-run, so a
// killed grid continues where it stopped (kill -9 included — the ledger
// fsyncs every record and drops a torn tail on reopen). -force re-runs
// everything, appending new records; history is never rewritten. Each run
// prints the ledger head hash — pin it (CI artifact, commit message) and
// `runlog ledger verify -head` proves the ledger was not rewritten since.
//
// Exit code: 0 on success, 1 on infrastructure errors or cell failures,
// 2 on flag errors, 4 when -compare detects a regression.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/ledger"
	"oselmrl/internal/obs"
	"oselmrl/internal/vcs"
)

const exitRegression = 4

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	fs := flag.NewFlagSet("grid", flag.ContinueOnError)
	matrixPath := fs.String("matrix", "experiments.json", "experiment matrix JSON file")
	outDir := fs.String("out", "results/grid", "output directory for cell artifacts and paper tables")
	ledgerDir := fs.String("ledger", "results/ledger", "ledger directory (append-only ledger.jsonl)")
	workers := fs.Int("workers", 0, "parallel cell workers (0 = GOMAXPROCS)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell wall-clock timeout (0 = none); a timed-out cell records a 'timeout' verdict")
	force := fs.Bool("force", false, "re-run cells that already have a ledger verdict (appends new records; never rewrites)")
	comparePath := fs.String("compare", "", "compare the regenerated grid_report.json against this prior report and fail on regression")
	threshold := fs.Float64("threshold", 10, "-compare regression threshold: mean-episodes increase beyond this percentage fails")
	eventsPath := fs.String("events", "", "write the grid's own JSONL event log to this file ('-' for stderr)")
	serveAddr := fs.String("serve", "", "serve live grid telemetry (/metrics, /snapshot) on this address while the matrix runs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, err := LoadMatrix(*matrixPath)
	if err != nil {
		return fail(err)
	}
	cells := m.Cells()

	tel, err := cli.StartTelemetry(cli.TelemetryFlags{Events: *eventsPath, Serve: *serveAddr})
	if err != nil {
		return fail(err)
	}

	l, err := ledger.Open(*ledgerDir)
	if err != nil {
		return fail(err)
	}
	defer l.Close()
	if l.Truncated() {
		fmt.Fprintln(os.Stderr, "grid: ledger had a torn trailing record (killed writer); dropped and continuing")
	}
	// Artifact paths are recorded relative to the ledger directory's
	// parent, so the whole results/ tree (ledger + cells + tables) stays
	// verifiable after being moved or unpacked elsewhere.
	artifactRoot := filepath.Dir(filepath.Clean(*ledgerDir))

	plan, skipped := planCells(cells, l, *outDir, *force)
	git := vcs.Head()

	fmt.Printf("grid %s: %d cells (%d to run, %d already complete in ledger)\n",
		m.Name, len(cells), len(plan), skipped)
	tel.Emitter.SetGauge(obs.GaugeGridCellsPlanned, float64(len(cells)))
	tel.Emitter.Inc(obs.MetricGridCellsSkipped, int64(skipped))

	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw > len(plan) {
		nw = len(plan)
	}

	var (
		mu      sync.Mutex // serializes ledger appends
		running atomic.Int64
		failed  atomic.Int64
		work    = make(chan plannedCell)
		wg      sync.WaitGroup
	)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pc := range work {
				running.Add(1)
				tel.Emitter.SetGauge(obs.GaugeGridCellsRunning, float64(running.Load()))
				start := time.Now()
				rec, err := runCell(pc, *cellTimeout, git)
				elapsed := time.Since(start)
				running.Add(-1)
				tel.Emitter.SetGauge(obs.GaugeGridCellsRunning, float64(running.Load()))
				tel.Emitter.Observe(obs.HistGridCellSeconds, elapsed.Seconds())
				if err != nil {
					failed.Add(1)
					tel.Emitter.Inc(obs.MetricGridCellsFailed, 1)
					fmt.Fprintf(os.Stderr, "grid: cell %s failed: %v\n", pc.cell.ID(), err)
					continue
				}
				rec.Artifacts = relArtifacts(rec.Artifacts, pc.dir, artifactRoot)
				mu.Lock()
				_, aerr := l.Append(rec)
				mu.Unlock()
				if aerr != nil {
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "grid: recording cell %s: %v\n", pc.cell.ID(), aerr)
					continue
				}
				tel.Emitter.Inc(obs.MetricGridCellsDone, 1)
				fmt.Printf("grid: %-40s %s (%.1fs)\n", pc.cell.ID(), rec.Verdict, elapsed.Seconds())
			}
		}()
	}
	for _, pc := range plan {
		work <- pc
	}
	close(work)
	wg.Wait()

	if err := writeReports(l, m, *outDir, artifactRoot, git); err != nil {
		return fail(err)
	}
	if err := tel.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "grid: closing telemetry:", err)
	}
	fmt.Printf("grid: ran %d, skipped %d, failed %d\n", len(plan)-int(failed.Load()), skipped, failed.Load())
	fmt.Printf("grid: ledger head %s (%d records) — pin this hash to detect history rewrites\n",
		l.Head(), l.Len())

	if *comparePath != "" {
		regressions, err := compareReportFiles(*comparePath, filepath.Join(*outDir, reportFile), *threshold)
		if err != nil {
			return fail(err)
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "grid: %d regression(s) vs %s:\n", len(regressions), *comparePath)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "grid:   "+r)
			}
			return exitRegression
		}
		fmt.Printf("grid: no regressions vs %s\n", *comparePath)
	}
	if failed.Load() > 0 {
		return 1
	}
	return 0
}

// plannedCell is one cell scheduled for execution this run.
type plannedCell struct {
	cell Cell
	hash string
	// dir is the attempt directory for this execution's artifacts:
	// <out>/cells/<hash12>-a<attempt>. Attempt numbering counts prior
	// ledger records for the same config hash, so a -force re-run writes a
	// fresh directory and the digests in older records stay verifiable; a
	// killed attempt left no record and its directory is safely reused.
	dir     string
	attempt int
}

// planCells splits the matrix into cells to run and cells already carrying
// a ledger verdict (the resume skip set). For a reused attempt directory
// left by a killed run, the partial event log is scanned tolerantly and
// its progress reported — the log is about to be overwritten.
func planCells(cells []Cell, l *ledger.Ledger, outDir string, force bool) (plan []plannedCell, skipped int) {
	done := l.LatestByConfig()
	attempts := make(map[string]int)
	for _, r := range l.Records() {
		if r.Kind == ledger.KindCell && r.ConfigHash != "" {
			attempts[r.ConfigHash]++
		}
	}
	for _, c := range cells {
		hash, err := c.ConfigHash()
		if err != nil {
			// A Cell is plain data; hashing cannot fail on one.
			panic(err)
		}
		if _, ok := done[hash]; ok && !force {
			skipped++
			continue
		}
		attempt := attempts[hash] + 1
		dir := filepath.Join(outDir, "cells", fmt.Sprintf("%s-a%d", hash[:12], attempt))
		reportPartialAttempt(c, filepath.Join(dir, "events.jsonl"))
		plan = append(plan, plannedCell{cell: c, hash: hash, dir: dir, attempt: attempt})
	}
	return plan, skipped
}

// reportPartialAttempt surfaces how far a killed attempt got before being
// re-run, reading its event log with the truncation-tolerant scanner (the
// tail is torn mid-record when the writer died inside a write).
func reportPartialAttempt(c Cell, eventsPath string) {
	f, err := os.Open(eventsPath)
	if err != nil {
		return
	}
	defer f.Close()
	events := 0
	truncated, err := obs.ScanEventsPartial(f, func(*obs.Event) error {
		events++
		return nil
	})
	if err != nil || events == 0 {
		return
	}
	note := ""
	if truncated {
		note = ", torn tail"
	}
	fmt.Fprintf(os.Stderr, "grid: %s: previous attempt was interrupted after %d events%s; re-running\n",
		c.ID(), events, note)
}

// relArtifacts rebases artifact paths (written relative to the cell dir)
// onto the verification root.
func relArtifacts(arts []ledger.Artifact, dir, root string) []ledger.Artifact {
	out := make([]ledger.Artifact, len(arts))
	for i, a := range arts {
		full := filepath.Join(dir, a.Path)
		rel, err := filepath.Rel(root, full)
		if err != nil {
			rel = full
		}
		out[i] = ledger.Artifact{Path: filepath.ToSlash(rel), SHA256: a.SHA256}
	}
	return out
}

// runCell executes one grid cell: all its trials under the per-cell
// timeout, artifacts (events log, manifest, summary) into the attempt
// directory, and the verdict as an unchained ledger record (the caller
// chains and appends it). Artifact paths in the returned record are
// relative to the attempt directory.
func runCell(pc plannedCell, timeout time.Duration, git vcs.Info) (ledger.Record, error) {
	c := pc.cell
	if err := os.MkdirAll(pc.dir, 0o755); err != nil {
		return ledger.Record{}, err
	}
	d, err := harness.ParseDesign(c.Design)
	if err != nil {
		return ledger.Record{}, err
	}
	qformat, err := cli.ParseQFormat("Q20")
	if err != nil {
		return ledger.Record{}, err
	}
	if c.QFormat != "" {
		if qformat, err = cli.ParseQFormat(c.QFormat); err != nil {
			return ledger.Record{}, err
		}
	}
	probe, err := cli.MakeEnv(c.Env, 1)
	if err != nil {
		return ledger.Record{}, err
	}
	obsSize, actions := probe.ObservationSize(), probe.ActionCount()

	eventsFile := filepath.Join(pc.dir, "events.jsonl")
	emitter, err := cli.NewEventsEmitter(eventsFile)
	if err != nil {
		return ledger.Record{}, err
	}

	var stop chan struct{}
	var timedOut atomic.Bool
	if timeout > 0 {
		stop = make(chan struct{})
		timer := time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			close(stop)
		})
		defer timer.Stop()
	}

	cfg := harness.RunConfigFor(d, harness.Defaults())
	cfg.MaxEpisodes = c.Episodes
	cfg.RecordCurve = false
	cli.SolveFor(c.Env, &cfg)
	cfg.Obs = emitter.With(map[string]string{"cell": c.ID()})
	cfg.Stop = stop

	spec := harness.TrialSpec{
		MakeAgent: func(seed uint64) (harness.Agent, error) {
			return harness.NewAgentQ(d, obsSize, actions, c.Hidden, seed, qformat)
		},
		MakeEnv: func(seed uint64) env.Env {
			e, err := cli.MakeEnv(c.Env, seed+100)
			if err != nil {
				// Validated by the probe above; cannot fail here.
				panic(err)
			}
			return e
		},
		Config:   cfg,
		Trials:   c.Seeds,
		BaseSeed: c.BaseSeed,
		// Parallelism across the grid comes from -workers; within a cell
		// trials run sequentially so a worker is one core.
		Parallelism: 1,
	}

	manifest := obs.NewManifest()
	manifest.Design = c.Design
	manifest.Env = c.Env
	manifest.Hidden = c.Hidden
	manifest.BaseSeed = c.BaseSeed
	manifest.Trials = c.Seeds
	manifest.QFormat = c.QFormat
	manifest.Config = cfg
	manifest.EventsPath = "events.jsonl"
	manifest.GitSHA = git.SHA
	manifest.GitDirty = git.Dirty
	manifest.Extra = map[string]string{"tool": "grid", "cell": c.ID(), "config_hash": pc.hash}

	start := time.Now()
	results := harness.RunTrials(spec)
	wall := time.Since(start)
	if err := emitter.Close(); err != nil {
		return ledger.Record{}, fmt.Errorf("cell %s: closing events: %w", c.ID(), err)
	}

	verdict, metrics := summarizeCell(d, c, results, wall)
	if timedOut.Load() {
		verdict = "timeout"
	}

	manifest.End = start.Add(wall)
	if err := cli.WriteManifestFile(filepath.Join(pc.dir, "manifest.json"), manifest); err != nil {
		return ledger.Record{}, err
	}
	if err := writeCellSummary(filepath.Join(pc.dir, "cell.json"), c, pc.hash, verdict, metrics); err != nil {
		return ledger.Record{}, err
	}

	var arts []ledger.Artifact
	for _, name := range []string{"cell.json", "manifest.json", "events.jsonl"} {
		digest, err := ledger.HashFile(filepath.Join(pc.dir, name))
		if err != nil {
			return ledger.Record{}, err
		}
		arts = append(arts, ledger.Artifact{Path: name, SHA256: digest})
	}

	return ledger.Record{
		Kind:       ledger.KindCell,
		Time:       start.UTC().Format(time.RFC3339),
		Cell:       c.ID(),
		ConfigHash: pc.hash,
		GitSHA:     git.SHA,
		GitDirty:   git.Dirty,
		Verdict:    verdict,
		Metrics:    metrics,
		Manifest:   "manifest.json",
		Artifacts:  arts,
	}, nil
}

// summarizeCell reduces a cell's trial results to the verdict and the flat
// metric map stored in its ledger record — the sole input to the paper
// tables, so everything they need is here: trial counts, episode
// statistics, and the modelled per-phase device seconds averaged over
// trials (sec_<phase>, sec_total).
func summarizeCell(d harness.Design, c Cell, results []*harness.Result, wall time.Duration) (string, map[string]float64) {
	modelSecs := make([]float64, len(results))
	phaseSums := map[string]float64{}
	interrupted, errored := 0, 0
	for i, r := range results {
		if r == nil {
			continue
		}
		if r.Err != nil {
			if errors.Is(r.Err, harness.ErrInterrupted) {
				interrupted++
			} else {
				errored++
			}
		}
		bd := harness.Breakdown(d, r.Counters)
		modelSecs[i] = bd.Total()
		for phase, sec := range bd {
			phaseSums[string(phase)] += sec
		}
	}
	agg := harness.Summarize(results, modelSecs)

	metrics := map[string]float64{
		"hidden":        float64(c.Hidden),
		"trials":        float64(agg.Trials),
		"solved_trials": float64(agg.SolvedCount),
		"mean_resets":   agg.MeanResets,
		"wall_seconds":  wall.Seconds(),
		"interrupted":   float64(interrupted),
		"errors":        float64(errored),
	}
	if agg.SolvedCount > 0 {
		metrics["mean_episodes"] = agg.MeanEpisodes
		metrics["std_episodes"] = agg.StdEpisodes
		metrics["mean_steps"] = agg.MeanSteps
		metrics["sec_solved_mean"] = agg.MeanModelSeconds
	}
	var total float64
	for phase, sum := range phaseSums {
		mean := sum / float64(len(results))
		metrics["sec_"+phase] = mean
		total += mean
	}
	metrics["sec_total"] = total

	verdict := "unsolved"
	switch {
	case errored > 0:
		verdict = "error"
	case agg.SolvedCount > 0:
		verdict = "solved"
	}
	return verdict, metrics
}

// writeCellSummary persists the cell's machine-readable outcome next to
// its manifest.
func writeCellSummary(path string, c Cell, hash, verdict string, metrics map[string]float64) error {
	return writeJSON(path, struct {
		Cell       Cell               `json:"cell"`
		ID         string             `json:"id"`
		ConfigHash string             `json:"config_hash"`
		Verdict    string             `json:"verdict"`
		Metrics    map[string]float64 `json:"metrics"`
	}{c, c.ID(), hash, verdict, metrics})
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "grid:", err)
	return 1
}
