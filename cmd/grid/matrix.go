package main

import (
	"encoding/json"
	"fmt"
	"os"

	"oselmrl/internal/cli"
	"oselmrl/internal/harness"
	"oselmrl/internal/ledger"
)

// Matrix declares an experiment grid: the cross product of environments,
// designs and hidden widths, with the FPGA design additionally expanded
// across fixed-point formats (the §4.4 wordlength ablation). Loaded from
// the -matrix JSON file (experiments.json at the repository root is the
// paper's full grid).
type Matrix struct {
	// Name labels the grid in reports.
	Name string `json:"name"`
	// Envs, Designs and Hidden span the grid axes.
	Envs    []string `json:"envs"`
	Designs []string `json:"designs"`
	Hidden  []int    `json:"hidden"`
	// QFormats expands the FPGA design into one cell per fixed-point
	// format; software designs ignore it (they run in float64). Empty
	// means the FPGA runs once at the default format.
	QFormats []string `json:"qformats,omitempty"`
	// Seeds is the number of independent trials per cell and BaseSeed
	// offsets them (trial i uses BaseSeed + i).
	Seeds    int    `json:"seeds"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// Episodes is the per-trial episode budget; DQNEpisodes overrides it
	// for the DQN design (gradient training is orders of magnitude slower
	// per episode, so grids give it a smaller budget). Zero falls back to
	// Episodes.
	Episodes    int `json:"episodes"`
	DQNEpisodes int `json:"dqn_episodes,omitempty"`
}

// Cell is one grid point — the unit of execution, resumption and ledger
// recording. Its canonical JSON is the config hash, so any field change
// makes it a new cell.
type Cell struct {
	Env      string `json:"env"`
	Design   string `json:"design"`
	Hidden   int    `json:"hidden"`
	QFormat  string `json:"qformat,omitempty"`
	Seeds    int    `json:"seeds"`
	BaseSeed uint64 `json:"base_seed,omitempty"`
	Episodes int    `json:"episodes"`
}

// ID is the human-readable cell label used in the ledger, reports and
// logs: env/design[-qformat]/h<hidden>.
func (c Cell) ID() string {
	d := c.Design
	if c.QFormat != "" {
		d += "-" + c.QFormat
	}
	return fmt.Sprintf("%s/%s/h%d", c.Env, d, c.Hidden)
}

// ConfigHash is the cell's resume key in the ledger.
func (c Cell) ConfigHash() (string, error) { return ledger.HashConfig(c) }

// LoadMatrix reads and validates a matrix file. Every axis value is
// checked up front — a typo fails before any cell runs, not an hour in.
func LoadMatrix(path string) (*Matrix, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("matrix %s: %w", path, err)
	}
	if len(m.Envs) == 0 || len(m.Designs) == 0 || len(m.Hidden) == 0 {
		return nil, fmt.Errorf("matrix %s: envs, designs and hidden must each be non-empty", path)
	}
	for _, name := range m.Envs {
		if _, err := cli.MakeEnv(name, 1); err != nil {
			return nil, fmt.Errorf("matrix %s: %w", path, err)
		}
	}
	for _, name := range m.Designs {
		if _, err := harness.ParseDesign(name); err != nil {
			return nil, fmt.Errorf("matrix %s: %w", path, err)
		}
	}
	for _, h := range m.Hidden {
		if h <= 0 {
			return nil, fmt.Errorf("matrix %s: hidden width %d must be positive", path, h)
		}
	}
	for _, q := range m.QFormats {
		if _, err := cli.ParseQFormat(q); err != nil {
			return nil, fmt.Errorf("matrix %s: %w", path, err)
		}
	}
	if m.Seeds <= 0 {
		m.Seeds = 1
	}
	if m.BaseSeed == 0 {
		m.BaseSeed = 1
	}
	if m.Episodes <= 0 {
		return nil, fmt.Errorf("matrix %s: episodes must be positive", path)
	}
	return &m, nil
}

// Cells expands the matrix into its grid points in deterministic order
// (env, then design, then hidden, then qformat).
func (m *Matrix) Cells() []Cell {
	var cells []Cell
	for _, envName := range m.Envs {
		for _, design := range m.Designs {
			episodes := m.Episodes
			if design == string(harness.DesignDQN) && m.DQNEpisodes > 0 {
				episodes = m.DQNEpisodes
			}
			qformats := []string{""}
			if design == string(harness.DesignFPGA) && len(m.QFormats) > 0 {
				qformats = m.QFormats
			}
			for _, h := range m.Hidden {
				for _, q := range qformats {
					cells = append(cells, Cell{
						Env: envName, Design: design, Hidden: h, QFormat: q,
						Seeds: m.Seeds, BaseSeed: m.BaseSeed, Episodes: episodes,
					})
				}
			}
		}
	}
	return cells
}
