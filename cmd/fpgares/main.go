// Command fpgares regenerates paper Table 3: FPGA resource utilization of
// the OS-ELM Q-Network core on the PYNQ-Z1's xc7z020 device for hidden
// widths 32..256. It is the regeneration target for experiment E2 in
// DESIGN.md.
//
// Usage:
//
//	go run ./cmd/fpgares [-hidden 32,64,128,192,256] [-inputs 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"oselmrl/internal/cli"
	"oselmrl/internal/fpga"
)

func main() {
	hiddenFlag := flag.String("hidden", "32,64,128,192,256", "comma-separated hidden widths")
	inputs := flag.Int("inputs", 5, "network input size (states + action; 5 for CartPole)")
	flag.Parse()

	sizes, err := cli.ParseIntList(*hiddenFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgares:", err)
		os.Exit(2)
	}

	fmt.Printf("Paper Table 3 — FPGA resource utilization of the OS-ELM Q-Network core\n")
	fmt.Printf("Device: %s (BRAM36 %d, DSP48 %d, FF %d, LUT %d)\n\n",
		fpga.XC7Z020.Name, fpga.XC7Z020.BRAM36, fpga.XC7Z020.DSP48,
		fpga.XC7Z020.FF, fpga.XC7Z020.LUT)
	fmt.Printf("%-6s %-10s %-10s %-10s %-10s\n", "Units", "BRAM [%]", "DSP [%]", "FF [%]", "LUT [%]")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			fmt.Printf("%-6d %-10s %-10s %-10s %-10s  (does not fit: needs %d BRAM36)\n",
				n, "-", "-", "-", "-", u.BRAM36)
			continue
		}
		b, d, f, l := u.Percent(fpga.XC7Z020)
		fmt.Printf("%-6d %-10.2f %-10.2f %-10.2f %-10.2f\n", n, b, d, f, l)
	}

	fmt.Println("\nFirst-principles memory map (P + transposed copy, cyclic x4, double-buffered):")
	for _, n := range sizes {
		m, err := fpga.CoreMemoryMap(*inputs, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgares:", err)
			os.Exit(1)
		}
		fit := "fits"
		if m.TotalBRAM36() > fpga.XC7Z020.BRAM36 {
			fit = "DOES NOT FIT"
		}
		fmt.Printf("  %4d units: %3d BRAM36 + %6d LUTRAM bits (%s)\n",
			n, m.TotalBRAM36(), m.TotalLUTBits(), fit)
	}

	fmt.Println("\nDatapath cycle counts (predict / seq_train) at 125 MHz:")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			continue
		}
		core := fpga.NewCore(*inputs, n, 1, fpga.DefaultCycleModel())
		p, s := core.PredictCycles(), core.SeqTrainCycles()
		fmt.Printf("  %4d units: predict %7d cycles (%.1f us)   seq_train %9d cycles (%.1f us)\n",
			n, p, float64(p)/125.0, s, float64(s)/125.0)
	}
}
