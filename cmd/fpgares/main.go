// Command fpgares regenerates paper Table 3: FPGA resource utilization of
// the OS-ELM Q-Network core on the PYNQ-Z1's xc7z020 device for hidden
// widths 32..256, extended with the datapath's modelled throughput
// (cycles per predict / per seq_train update and updates/s at 125 MHz)
// next to each row, and a fleet-headroom projection: how many replicated
// cores the device's binding resource admits, what occupancy a short
// profiled workload measures on the single-unit datapath, and the
// resulting aggregate updates/s per device. It is the regeneration target
// for experiment E2 in DESIGN.md.
//
// Usage:
//
//	go run ./cmd/fpgares [-hidden 32,64,128,192,256] [-inputs 5]
package main

import (
	"flag"
	"fmt"
	"os"

	"oselmrl/internal/cli"
	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
	"oselmrl/internal/mat"
)

// clockHz is the programmable-logic clock the paper's core runs at.
const clockHz = 125e6

func main() {
	hiddenFlag := flag.String("hidden", "32,64,128,192,256", "comma-separated hidden widths")
	inputs := flag.Int("inputs", 5, "network input size (states + action; 5 for CartPole)")
	flag.Parse()

	sizes, err := cli.ParseIntList(*hiddenFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgares:", err)
		os.Exit(2)
	}

	fmt.Printf("Paper Table 3 — FPGA resource utilization of the OS-ELM Q-Network core\n")
	fmt.Printf("Device: %s (BRAM36 %d, DSP48 %d, FF %d, LUT %d)\n\n",
		fpga.XC7Z020.Name, fpga.XC7Z020.BRAM36, fpga.XC7Z020.DSP48,
		fpga.XC7Z020.FF, fpga.XC7Z020.LUT)
	fmt.Printf("%-6s %-10s %-10s %-10s %-10s %-12s %-12s %-10s\n",
		"Units", "BRAM [%]", "DSP [%]", "FF [%]", "LUT [%]", "cyc/predict", "cyc/update", "updates/s")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			fmt.Printf("%-6d %-10s %-10s %-10s %-10s  (does not fit: needs %d BRAM36)\n",
				n, "-", "-", "-", "-", u.BRAM36)
			continue
		}
		b, d, f, l := u.Percent(fpga.XC7Z020)
		core := fpga.NewCore(*inputs, n, 1, fpga.DefaultCycleModel())
		p, s := core.PredictCycles(), core.SeqTrainCycles()
		fmt.Printf("%-6d %-10.2f %-10.2f %-10.2f %-10.2f %-12d %-12d %-10.0f\n",
			n, b, d, f, l, p, s, clockHz/float64(s))
	}
	fmt.Println("(cyc/update is one seq_train invocation; updates/s is the pure-PL rate at 125 MHz)")

	fmt.Println("\nFirst-principles memory map (P + transposed copy, cyclic x4, double-buffered):")
	for _, n := range sizes {
		m, err := fpga.CoreMemoryMap(*inputs, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgares:", err)
			os.Exit(1)
		}
		fit := "fits"
		if m.TotalBRAM36() > fpga.XC7Z020.BRAM36 {
			fit = "DOES NOT FIT"
		}
		fmt.Printf("  %4d units: %3d BRAM36 + %6d LUTRAM bits (%s)\n",
			n, m.TotalBRAM36(), m.TotalLUTBits(), fit)
	}

	fmt.Println("\nDatapath cycle counts (predict / seq_train) at 125 MHz:")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			continue
		}
		core := fpga.NewCore(*inputs, n, 1, fpga.DefaultCycleModel())
		p, s := core.PredictCycles(), core.SeqTrainCycles()
		fmt.Printf("  %4d units: predict %7d cycles (%.1f us)   seq_train %9d cycles (%.1f us)\n",
			n, p, float64(p)/125.0, s, float64(s)/125.0)
	}

	fmt.Println("\nFleet headroom — replicated cores per xc7z020 (one agent per core):")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			fmt.Printf("  %4d units: 0 cores (a single core does not fit)\n", n)
			continue
		}
		cores, binding := coresPerDevice(u, fpga.XC7Z020)
		occ, opc, updPerSec := measureOccupancy(*inputs, n)
		fmt.Printf("  %4d units: %3d cores (bound by %s)  arith occupancy %.3f  %.3f ops/cycle  %7.0f upd/s/core  => %9.0f upd/s/device\n",
			n, cores, binding, occ, opc, updPerSec, float64(cores)*updPerSec)
	}
	fmt.Println("(occupancy and ops/cycle from a profiled synthetic workload on the cycle model;")
	fmt.Println(" the remainder of each core's cycles is control overhead and divider latency)")
}

// coresPerDevice is the static replication headroom: how many copies of
// one core's resource demand fit in the device, and which resource binds.
func coresPerDevice(u fpga.Utilization, d fpga.Device) (cores int, binding string) {
	cores = -1
	for _, r := range []struct {
		name      string
		need, cap int
	}{
		{"BRAM", u.BRAM36, d.BRAM36},
		{"DSP", u.DSP48, d.DSP48},
		{"FF", u.FF, d.FF},
		{"LUT", u.LUT, d.LUT},
	} {
		if r.need <= 0 {
			continue
		}
		if fit := r.cap / r.need; cores < 0 || fit < cores {
			cores, binding = fit, r.name
		}
	}
	if cores < 0 {
		cores = 0
	}
	return cores, binding
}

// measureOccupancy runs a short profiled synthetic workload — the RL
// inner loop's device pattern of two predicts (action selection + Bellman
// target) and one seq_train per transition — and reads the datapath's
// arithmetic occupancy (add+mul+div busy fraction), the ops/cycle
// roofline position, and the resulting updates/s of one core at 125 MHz.
func measureOccupancy(inputs, hidden int) (occupancy, opsPerCycle, updatesPerSec float64) {
	core := fpga.NewCore(inputs, hidden, 1, fpga.DefaultCycleModel())
	core.EnableProfiling()

	// Small deterministic parameters: P = I keeps the Eq. 5 denominator
	// guard quiet, the rest just exercises every kernel.
	alpha := mat.Zeros(inputs, hidden)
	for i := 0; i < inputs; i++ {
		for j := 0; j < hidden; j++ {
			alpha.Set(i, j, float64((i*hidden+j)%7-3)/8)
		}
	}
	beta := mat.Zeros(hidden, 1)
	for i := 0; i < hidden; i++ {
		beta.Set(i, 0, float64(i%5-2)/16)
	}
	core.LoadFloat(alpha, make([]float64, hidden), beta, mat.Eye(hidden))

	q := core.Format()
	x := make([]fixed.Fixed, inputs)
	t := []fixed.Fixed{q.FromFloat(0.125)}
	const steps = 8
	for s := 0; s < steps; s++ {
		for i := range x {
			x[i] = q.FromFloat(float64((s+i)%9-4) / 16)
		}
		core.Predict(x)
		core.Predict(x)
		core.SeqTrain(x, t)
	}

	prof := core.Prof()
	occupancy = prof.UnitBusyFraction(fpga.UnitAdd) +
		prof.UnitBusyFraction(fpga.UnitMul) +
		prof.UnitBusyFraction(fpga.UnitDiv)
	opsPerCycle = prof.OpsPerCycle()
	return occupancy, opsPerCycle, clockHz * float64(steps) / float64(core.Cycles())
}
