// Command fpgares regenerates paper Table 3: FPGA resource utilization of
// the OS-ELM Q-Network core on the PYNQ-Z1's xc7z020 device for hidden
// widths 32..256, extended with the datapath's modelled throughput
// (cycles per predict / per seq_train update and updates/s at 125 MHz)
// next to each row, and a fleet-headroom projection: how many replicated
// cores the device's binding resource admits (fpga.CoresPerDevice) and
// the aggregate updates/s the discrete-event fleet simulator models for
// the fully replicated device — busy fractions and speedup come from
// internal/fleet's shared-dispatcher schedule, not from single-core
// occupancy alone. It is the regeneration target for experiment E2 in
// DESIGN.md.
//
// The fleet subcommand emits the headline modelled-speedup artifact:
// 1→N-core speedup tables (N capped by the resource estimator) for the
// population-training and batched-inference workloads.
//
// Usage:
//
//	go run ./cmd/fpgares [-hidden 32,64,128,192,256] [-inputs 5]
//	go run ./cmd/fpgares fleet [-hidden 64] [-inputs 5] [-members 0] [-steps 16] [-batch 256] [-cores 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"oselmrl/internal/cli"
	"oselmrl/internal/fleet"
	"oselmrl/internal/fpga"
)

// clockHz is the programmable-logic clock the paper's core runs at.
const clockHz = 125e6

func main() {
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		os.Exit(fleetMain(os.Args[2:]))
	}
	hiddenFlag := flag.String("hidden", "32,64,128,192,256", "comma-separated hidden widths")
	inputs := flag.Int("inputs", 5, "network input size (states + action; 5 for CartPole)")
	flag.Parse()

	sizes, err := cli.ParseIntList(*hiddenFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpgares:", err)
		os.Exit(2)
	}

	fmt.Printf("Paper Table 3 — FPGA resource utilization of the OS-ELM Q-Network core\n")
	fmt.Printf("Device: %s (BRAM36 %d, DSP48 %d, FF %d, LUT %d)\n\n",
		fpga.XC7Z020.Name, fpga.XC7Z020.BRAM36, fpga.XC7Z020.DSP48,
		fpga.XC7Z020.FF, fpga.XC7Z020.LUT)
	fmt.Printf("%-6s %-10s %-10s %-10s %-10s %-12s %-12s %-10s\n",
		"Units", "BRAM [%]", "DSP [%]", "FF [%]", "LUT [%]", "cyc/predict", "cyc/update", "updates/s")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			fmt.Printf("%-6d %-10s %-10s %-10s %-10s  (does not fit: needs %d BRAM36)\n",
				n, "-", "-", "-", "-", u.BRAM36)
			continue
		}
		b, d, f, l := u.Percent(fpga.XC7Z020)
		core := fpga.NewCore(*inputs, n, 1, fpga.DefaultCycleModel())
		p, s := core.PredictCycles(), core.SeqTrainCycles()
		fmt.Printf("%-6d %-10.2f %-10.2f %-10.2f %-10.2f %-12d %-12d %-10.0f\n",
			n, b, d, f, l, p, s, clockHz/float64(s))
	}
	fmt.Println("(cyc/update is one seq_train invocation; updates/s is the pure-PL rate at 125 MHz)")

	fmt.Println("\nFirst-principles memory map (P + transposed copy, cyclic x4, double-buffered):")
	for _, n := range sizes {
		m, err := fpga.CoreMemoryMap(*inputs, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgares:", err)
			os.Exit(1)
		}
		fit := "fits"
		if m.TotalBRAM36() > fpga.XC7Z020.BRAM36 {
			fit = "DOES NOT FIT"
		}
		fmt.Printf("  %4d units: %3d BRAM36 + %6d LUTRAM bits (%s)\n",
			n, m.TotalBRAM36(), m.TotalLUTBits(), fit)
	}

	fmt.Println("\nDatapath cycle counts (predict / seq_train) at 125 MHz:")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			continue
		}
		core := fpga.NewCore(*inputs, n, 1, fpga.DefaultCycleModel())
		p, s := core.PredictCycles(), core.SeqTrainCycles()
		fmt.Printf("  %4d units: predict %7d cycles (%.1f us)   seq_train %9d cycles (%.1f us)\n",
			n, p, float64(p)/125.0, s, float64(s)/125.0)
	}

	fmt.Println("\nFleet headroom — replicated cores per xc7z020 (one agent per core, fleet-simulated):")
	for _, n := range sizes {
		u := fpga.EstimateResources(*inputs, n)
		if !u.Feasible {
			fmt.Printf("  %4d units: 0 cores (a single core does not fit)\n", n)
			continue
		}
		p := fleet.ProjectHeadroom(*inputs, n, fleet.Config{})
		fmt.Printf("  %4d units: %3d cores (bound by %s)  busy %.3f  speedup %6.2f  %7.0f upd/s/core  => %9.0f upd/s/device\n",
			n, p.Cores, p.Binding, p.BusyMean, p.Speedup, p.UpdatesPerSecCore, p.UpdatesPerSecDevice)
	}
	fmt.Println("(busy and speedup from the discrete-event fleet simulator: N cores sharing one")
	fmt.Println(" serialized dispatcher, 8 us per kernel dispatch — the Amdahl fraction that keeps")
	fmt.Println(" upd/s/device below cores x upd/s/core)")
}

// fleetMain implements the fleet subcommand: the 1→N modelled-speedup
// curves for population training and batched inference at one design
// point, N capped by the resource estimator.
func fleetMain(args []string) int {
	fs := flag.NewFlagSet("fpgares fleet", flag.ExitOnError)
	hidden := fs.Int("hidden", 64, "hidden width of each core")
	inputs := fs.Int("inputs", 5, "network input size (states + action; 5 for CartPole)")
	members := fs.Int("members", 0, "population members for the training workload (0: one per admitted core)")
	steps := fs.Int("steps", 16, "RL transitions per member (2 predicts + 1 seq_train each)")
	batch := fs.Int("batch", 256, "independent predicts in the batched-inference workload")
	cores := fs.Int("cores", 0, "sweep 1..cores (0: up to the resource estimator's cap)")
	dispatch := fs.Int64("dispatch", 0, "dispatch cost in cycles per issued kernel (0: the 8 us AXI handshake = 1000)")
	fs.Parse(args)

	u := fpga.EstimateResources(*inputs, *hidden)
	if !u.Feasible {
		fmt.Fprintf(os.Stderr, "fpgares fleet: a %d-unit core does not fit %s (needs %d BRAM36)\n",
			*hidden, fpga.XC7Z020.Name, u.BRAM36)
		return 1
	}
	cap, binding := fpga.CoresPerDevice(u, fpga.XC7Z020)
	maxCores := *cores
	if maxCores <= 0 || maxCores > cap {
		maxCores = cap
	}
	nMembers := *members
	if nMembers <= 0 {
		nMembers = maxCores
	}
	costs := fpga.AnalyticKernelCosts(*inputs, *hidden, 1, fpga.DefaultCycleModel())
	cfg := fleet.Config{DispatchCycles: *dispatch}

	fmt.Printf("Fleet speedup — modelled 1→N cores on %s (shared dispatcher)\n", fpga.XC7Z020.Name)
	fmt.Printf("%d units: %s admits %d cores (bound by %s); sweeping 1..%d\n\n",
		*hidden, fpga.XC7Z020.Name, cap, binding, maxCores)

	fmt.Printf("Population training — %d members x %d transitions (2 predicts + 1 seq_train each):\n",
		nMembers, *steps)
	train := fleet.SpeedupCurve(fleet.PopulationTraining(nMembers, *steps, costs), cfg, maxCores)
	fmt.Print(fleet.FormatSpeedupTable(train))

	fmt.Printf("\nBatched inference — %d independent predicts:\n", *batch)
	infer := fleet.SpeedupCurve(fleet.BatchedInference(*batch, costs), cfg, maxCores)
	fmt.Print(fleet.FormatSpeedupTable(infer))

	fmt.Println("\n(speedup is serialized-reference time over fleet makespan; the dispatcher")
	fmt.Println(" serializes one kernel issue per 8 us, which saturates both curves)")
	return 0
}
