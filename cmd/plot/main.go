// Command plot renders the regenerated figures as SVG from the CSV files
// the other tools emit:
//
//   - Figure 4 lookalike: one training-curve chart per curve_*.csv in the
//     input directory (light per-episode line + dark 100-episode average).
//   - Figure 5 lookalike: stacked per-phase bars from time_to_complete.csv,
//     one chart per hidden width.
//
// Usage:
//
//	go run ./cmd/traincurve -hidden 32 -out results/curves
//	go run ./cmd/timetocomplete -hidden 32 -out results
//	go run ./cmd/plot -curves results/curves -breakdown results/time_to_complete.csv -out results/figs
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"oselmrl/internal/svgplot"
	"oselmrl/internal/timing"
)

func main() {
	curvesDir := flag.String("curves", "", "directory of curve_*.csv files (Figure 4)")
	breakdownCSV := flag.String("breakdown", "", "time_to_complete.csv path (Figure 5)")
	outDir := flag.String("out", "results/figs", "output directory for SVGs")
	flag.Parse()

	if *curvesDir == "" && *breakdownCSV == "" {
		fmt.Fprintln(os.Stderr, "plot: nothing to do (pass -curves and/or -breakdown)")
		os.Exit(2)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fail(err)
	}
	if *curvesDir != "" {
		if err := plotCurves(*curvesDir, *outDir); err != nil {
			fail(err)
		}
	}
	if *breakdownCSV != "" {
		if err := plotBreakdown(*breakdownCSV, *outDir); err != nil {
			fail(err)
		}
	}
}

// plotCurves renders one SVG per curve CSV (Figure 4 style).
func plotCurves(dir, outDir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "curve_*.csv"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("plot: no curve_*.csv in %s", dir)
	}
	for _, f := range files {
		rows, err := readCSV(f)
		if err != nil {
			return err
		}
		var eps, steps, ma []float64
		for _, r := range rows {
			if len(r) < 4 {
				continue
			}
			e, err1 := strconv.ParseFloat(r[0], 64)
			s, err2 := strconv.ParseFloat(r[1], 64)
			m, err3 := strconv.ParseFloat(r[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				continue
			}
			eps = append(eps, e)
			steps = append(steps, s)
			ma = append(ma, m)
		}
		if len(eps) == 0 {
			continue
		}
		name := strings.TrimSuffix(filepath.Base(f), ".csv")
		chart := &svgplot.LineChart{
			Title:  strings.TrimPrefix(name, "curve_") + " — training curve (Figure 4)",
			XLabel: "episode",
			YLabel: "steps standing",
			Series: []svgplot.Series{
				{Name: "per-episode", X: eps, Y: steps, Light: true},
				{Name: "100-episode average", X: eps, Y: ma},
			},
		}
		svg, err := chart.Render()
		if err != nil {
			return fmt.Errorf("plot: %s: %w", f, err)
		}
		out := filepath.Join(outDir, name+".svg")
		if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	return nil
}

// plotBreakdown renders one stacked-bar SVG per hidden width (Figure 5 style).
func plotBreakdown(path, outDir string) error {
	rows, err := readCSV(path)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("plot: empty breakdown CSV")
	}
	// Columns: design,hidden,solved,episodes,<7 phases>,total.
	segNames := make([]string, len(timing.AllPhases))
	for i, p := range timing.AllPhases {
		segNames[i] = string(p)
	}
	byHidden := map[string][]svgplot.Bar{}
	order := []string{}
	for _, r := range rows {
		if len(r) < 4+len(timing.AllPhases) {
			continue
		}
		hidden := r[1]
		segs := make([]float64, len(timing.AllPhases))
		ok := true
		for i := range timing.AllPhases {
			v, err := strconv.ParseFloat(r[4+i], 64)
			if err != nil {
				ok = false
				break
			}
			segs[i] = v
		}
		if !ok {
			continue
		}
		label := r[0]
		if r[2] == "false" {
			label += " (unsolved)"
		}
		if _, seen := byHidden[hidden]; !seen {
			order = append(order, hidden)
		}
		byHidden[hidden] = append(byHidden[hidden], svgplot.Bar{Label: label, Segments: segs})
	}
	for _, hidden := range order {
		chart := &svgplot.BarChart{
			Title:        fmt.Sprintf("Execution time to complete, %s hidden units (Figure 5)", hidden),
			YLabel:       "modelled device seconds",
			SegmentNames: segNames,
			Bars:         byHidden[hidden],
		}
		svg, err := chart.Render()
		if err != nil {
			return err
		}
		out := filepath.Join(outDir, fmt.Sprintf("figure5_%sunits.svg", hidden))
		if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", out)
	}
	return nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	all, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(all) > 0 {
		all = all[1:] // drop header
	}
	return all, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "plot:", err)
	os.Exit(1)
}
