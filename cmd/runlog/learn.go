package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"oselmrl/internal/obs"
)

// runLearn implements "runlog learn [run.jsonl]": an offline
// learning-dynamics and numeric-health report over a JSONL event log. It
// streams the log once and renders, per run: |TD-error| statistics from
// seq_update/train_step events, target statistics and the clip rate,
// σmax(β) and ‖β‖_F drift across theta2_sync events, the numeric_alert
// events a live -watchdog recorded, and the run_end diverged verdict. It
// also re-evaluates the watchdog rules offline against the streamed
// values (thresholds overridable with -max-sigma/-max-td), so a log
// recorded without -watchdog can still be screened for divergence after
// the fact.
func runLearn(args []string) error {
	fs := flag.NewFlagSet("runlog learn", flag.ContinueOnError)
	maxSigma := fs.Float64("max-sigma", obs.DefaultWatchdogConfig().MaxBetaSigmaMax,
		"offline σmax(β) threshold (0 disables the rule)")
	maxTD := fs.Float64("max-td", obs.DefaultWatchdogConfig().MaxTDErrorAbs,
		"offline |TD error| threshold (0 disables the rule)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one input file")
	}

	in, closeIn, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	acc := newLearnSummary(obs.WatchdogConfig{
		MaxBetaSigmaMax:   *maxSigma,
		MaxTDErrorAbs:     *maxTD,
		MaxSaturationRate: obs.DefaultWatchdogConfig().MaxSaturationRate,
	})
	if err := obs.ScanEvents(in, acc.add); err != nil {
		if !errors.Is(err, io.ErrUnexpectedEOF) || acc.total == 0 {
			return err
		}
		fmt.Fprintln(os.Stderr, "runlog learn: warning: log ends mid-event (run killed?); reporting the complete events")
	}
	if acc.total == 0 {
		return errors.New("no events in the log")
	}
	acc.print(os.Stdout)
	return nil
}

// series accumulates streaming statistics for one scalar sequence without
// retaining the values.
type series struct {
	n           int
	sum, sumSq  float64
	min, max    float64
	first, last float64
}

func (s *series) add(v float64) {
	if s.n == 0 {
		s.min, s.max, s.first = v, v, v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
	s.last = v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
}

func (s *series) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

func (s *series) std() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.mean()
	v := s.sumSq/float64(s.n) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// learnGroup accumulates one run's learning-dynamics events.
type learnGroup struct {
	key    string
	td     series // |TD error| per sequential update / gradient step
	target series // clip-bounded regression targets
	sigma  series // σmax(β) sampled at each θ2 sync
	norm   series // ‖β‖_F (or DQN weight norm) at each θ2 sync
	qval   series // predicted Q(s,a) per update

	clipped, targets int64 // seq_update clipped flags

	alerts  []obs.Alert // numeric_alert events recorded by a live watchdog
	offline *obs.Watchdog

	end        *obs.Event
	endDivergd bool
	endAlerts  int
}

// learnSummary is the streaming accumulator behind "runlog learn"; like
// the default summarize mode, only per-run aggregates stay resident.
type learnSummary struct {
	total  int
	cfg    obs.WatchdogConfig
	groups map[string]*learnGroup
	order  []string
}

func newLearnSummary(cfg obs.WatchdogConfig) *learnSummary {
	return &learnSummary{cfg: cfg, groups: map[string]*learnGroup{}}
}

// groupFor resolves the run group for an event, stripping the per-alert
// rule/metric labels numeric_alert events carry so they land in the same
// group as the run that produced them.
func (s *learnSummary) groupFor(ev *obs.Event) *learnGroup {
	labels := ev.Labels
	if ev.Type == obs.EventNumericAlert && labels != nil {
		stripped := make(map[string]string, len(labels))
		for k, v := range labels {
			if k == "rule" || k == "metric" {
				continue
			}
			stripped[k] = v
		}
		labels = stripped
	}
	key := labelKey(labels)
	g := s.groups[key]
	if g == nil {
		g = &learnGroup{key: key, offline: obs.NewWatchdog(s.cfg)}
		s.groups[key] = g
		s.order = append(s.order, key)
	}
	return g
}

// add consumes one event; its signature matches obs.ScanEvents. The event
// pointer is reused by the scanner, so retained payloads are copied.
func (s *learnSummary) add(ev *obs.Event) error {
	s.total++
	g := s.groupFor(ev)
	switch ev.Type {
	case obs.EventSeqUpdate, obs.EventTrainStep:
		if v, ok := ev.Data["td_error"]; ok {
			// Events carry the signed TD error; the report and the offline
			// rules track its magnitude (a -60 blowup is still a blowup).
			g.td.add(math.Abs(v))
			g.offline.CheckValue(obs.HistLearnTDErrorAbs, math.Abs(v))
		}
		if v, ok := ev.Data["target"]; ok {
			g.target.add(v)
			g.targets++
			if ev.Data["clipped"] == 1 {
				g.clipped++
			}
		}
		if v, ok := ev.Data["q_value"]; ok {
			g.qval.add(v)
		}
	case obs.EventTheta2Sync:
		if v, ok := ev.Data["beta_sigma_max"]; ok {
			g.sigma.add(v)
			g.offline.CheckValue(obs.GaugeBetaSigmaMax, v)
		}
		if v, ok := ev.Data["beta_norm"]; ok {
			g.norm.add(v)
		} else if v, ok := ev.Data["weight_norm"]; ok {
			g.norm.add(v)
		}
	case obs.EventNumericAlert:
		g.alerts = append(g.alerts, obs.Alert{
			Rule:      ev.Labels["rule"],
			Metric:    ev.Labels["metric"],
			Value:     ev.Data["value"],
			Threshold: ev.Data["threshold"],
		})
	case obs.EventRunEnd:
		end := *ev
		g.end = &end
		g.endDivergd = ev.Data["diverged"] == 1
		g.endAlerts = int(ev.Data["numeric_alerts"])
	}
	return nil
}

func (s *learnSummary) print(w io.Writer) {
	fmt.Fprintf(w, "Learning dynamics and numeric health (%d events)\n\n", s.total)
	for _, key := range s.order {
		g := s.groups[key]
		if g.empty() {
			continue
		}
		fmt.Fprintf(w, "  %s\n", key)
		if g.td.n > 0 {
			fmt.Fprintf(w, "    |TD error|    n=%-7d mean=%-9.4f std=%-9.4f max=%.4f\n",
				g.td.n, g.td.mean(), g.td.std(), g.td.max)
		}
		if g.target.n > 0 {
			clipPct := 0.0
			if g.targets > 0 {
				clipPct = 100 * float64(g.clipped) / float64(g.targets)
			}
			fmt.Fprintf(w, "    target        n=%-7d mean=%-9.4f min=%-9.4f max=%-9.4f clipped=%d (%.1f%%)\n",
				g.target.n, g.target.mean(), g.target.min, g.target.max, g.clipped, clipPct)
		}
		if g.qval.n > 0 {
			fmt.Fprintf(w, "    Q(s,a)        n=%-7d mean=%-9.4f min=%-9.4f max=%.4f\n",
				g.qval.n, g.qval.mean(), g.qval.min, g.qval.max)
		}
		if g.sigma.n > 0 {
			fmt.Fprintf(w, "    sigma(B)      syncs=%-3d first=%-9.4f last=%-9.4f max=%.4f\n",
				g.sigma.n, g.sigma.first, g.sigma.last, g.sigma.max)
		}
		if g.norm.n > 0 {
			fmt.Fprintf(w, "    weight norm   syncs=%-3d first=%-9.4f last=%-9.4f max=%.4f\n",
				g.norm.n, g.norm.first, g.norm.last, g.norm.max)
		}
		s.printVerdict(w, g)
		fmt.Fprintln(w)
	}
}

// printVerdict renders the recorded (live-watchdog) alerts, the offline
// re-evaluation, and the run_end diverged verdict for one run.
func (s *learnSummary) printVerdict(w io.Writer, g *learnGroup) {
	for _, al := range g.alerts {
		fmt.Fprintf(w, "    ALERT         %s on %s: value %g vs threshold %g (recorded by live watchdog)\n",
			al.Rule, al.Metric, al.Value, al.Threshold)
	}
	// The offline pass covers only what the event stream carries (TD
	// errors and σmax(β) samples); it is a screen for logs recorded
	// without -watchdog, not a replay of the full rule set.
	if len(g.alerts) == 0 {
		for _, al := range g.offline.Alerts() {
			fmt.Fprintf(w, "    ALERT         %s on %s: value %g vs threshold %g (offline re-evaluation, %d violations)\n",
				al.Rule, al.Metric, al.Value, al.Threshold, al.Count)
		}
	}
	switch {
	case g.end == nil:
		fmt.Fprintln(w, "    verdict       (run still in progress — no run_end event)")
	case g.endDivergd:
		fmt.Fprintf(w, "    verdict       DIVERGED (%d numeric alerts)\n", g.endAlerts)
	case len(g.alerts) == 0 && g.offline.Diverged():
		fmt.Fprintf(w, "    verdict       suspect — %d offline alerts (run had no live watchdog)\n",
			g.offline.AlertCount())
	default:
		fmt.Fprintln(w, "    verdict       healthy (zero numeric alerts)")
	}
}

// empty reports whether a group carries no learning-dynamics signal at
// all (e.g. the synthetic group created by an alert-only label set).
func (g *learnGroup) empty() bool {
	return g.td.n == 0 && g.target.n == 0 && g.sigma.n == 0 &&
		g.norm.n == 0 && g.qval.n == 0 && len(g.alerts) == 0 && g.end == nil
}
