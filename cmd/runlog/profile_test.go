package main

import (
	"os"
	"strings"
	"testing"

	"oselmrl/internal/fixed"
	"oselmrl/internal/fpga"
)

// profileData runs a real profiled core and renders its attribution the
// way the fpga agent's device_profile event does — the report must agree
// with the simulator, not with a hand-made fixture.
func profileData(t *testing.T) map[string]float64 {
	t.Helper()
	core := fpga.NewCore(5, 8, 1, fpga.DefaultCycleModel())
	core.EnableProfiling()
	x := make([]fixed.Fixed, 5)
	for i := range x {
		x[i] = fixed.FromFloat(float64(i-2) / 8)
	}
	core.Predict(x)
	core.SeqTrain(x, []fixed.Fixed{fixed.FromFloat(0.25)})
	if core.DenomGuardTrips() != 0 {
		t.Fatal("probe update tripped the guard")
	}
	p := core.Prof()
	data := map[string]float64{"total_cycles": float64(p.TotalCycles())}
	for ph := fpga.ProfPhase(0); ph < fpga.NumProfPhases; ph++ {
		for k := fpga.ProfKernel(0); k < fpga.NumProfKernels; k++ {
			for u := fpga.ProfUnit(0); u < fpga.NumProfUnits; u++ {
				if v := p.Cycles(ph, k, u); v != 0 {
					data["cycles_"+ph.String()+"_"+k.String()+"_"+u.String()] = float64(v)
				}
			}
		}
	}
	for b := fpga.Bank(0); b < fpga.NumBanks; b++ {
		for op := fpga.BankOp(0); op < fpga.NumBankOps; op++ {
			if v := p.BRAM(b, op); v != 0 {
				data["bram_"+b.String()+"_"+op.String()] = float64(v)
			}
		}
	}
	for u := fpga.UnitAdd; u <= fpga.UnitInvoke; u++ {
		if n := p.UnitOps(u); n > 0 {
			data["ops_"+u.String()] = float64(n)
		}
	}
	return data
}

func TestPrintProfileReport(t *testing.T) {
	data := profileData(t)
	var b strings.Builder
	if !printProfile(&b, "design=FPGA trial=0", data, 3) {
		t.Fatalf("attribution check failed on a consistent profile:\n%s", b.String())
	}
	out := b.String()
	for _, want := range []string{
		"design=FPGA trial=0",
		"cycles by phase: predict=",
		"seq_train   p_h",
		"hottest kernels: 1. ",
		"unit occupancy:",
		"roofline: ",
		"attribution check: OK",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Every bank a predict+seq_train touches shows up in the BRAM table.
	for _, bank := range []string{"P", "Pt", "alpha", "beta", "bias", "h", "ph", "x"} {
		if !strings.Contains(out, "\n  "+bank+" ") {
			t.Errorf("BRAM table missing bank %q:\n%s", bank, out)
		}
	}
}

// TestPrintProfileDetectsMismatch: the report must fail (and say so) when
// the attributed cycles do not sum to the device counter — the offline
// re-check of the profiler's invariant.
func TestPrintProfileDetectsMismatch(t *testing.T) {
	data := profileData(t)
	data["total_cycles"] += 7
	var b strings.Builder
	if printProfile(&b, "broken", data, 3) {
		t.Fatal("attribution check passed on an inconsistent profile")
	}
	if !strings.Contains(b.String(), "attribution check: FAILED") {
		t.Errorf("failure not reported:\n%s", b.String())
	}
}

// TestRunProfileNoEvents: a log without device_profile events is an
// error, not an empty report.
func TestRunProfileNoEvents(t *testing.T) {
	tmp := t.TempDir() + "/empty.jsonl"
	line := `{"type":"episode_end","seq":1,"data":{"steps":3}}` + "\n"
	if err := os.WriteFile(tmp, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runProfile([]string{tmp}); err == nil {
		t.Fatal("runProfile succeeded on a log with no device_profile events")
	}
}
