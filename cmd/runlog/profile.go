package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"oselmrl/internal/fpga"
	"oselmrl/internal/obs"
)

// runProfile implements "runlog profile [-top k] [run.jsonl]": the offline
// device-profile report over the device_profile events a -profile run
// emitted. The events are cumulative snapshots, so the last one per label
// group is that run's whole profile; the report renders the paper-style
// cycle breakdown (phase/kernel rows with per-unit splits), the top-k
// hottest kernels, unit occupancy with the ops/cycle roofline position,
// and the per-bank BRAM access table. It re-verifies the profiler's
// load-bearing invariant — the attributed cycles_* keys must sum exactly
// to total_cycles — and fails (exit 1) on any mismatch.
func runProfile(args []string) error {
	fs := flag.NewFlagSet("runlog profile", flag.ContinueOnError)
	topK := fs.Int("top", 3, "number of hottest kernels to highlight per run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one input file")
	}

	in, closeIn, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	// Last cumulative device_profile event per label group, in first-seen
	// order. Only this event type is retained; the log itself streams.
	last := map[string]*obs.Event{}
	var order []string
	count := 0
	scanErr := obs.ScanEvents(in, func(ev *obs.Event) error {
		if ev.Type != obs.EventDeviceProfile {
			return nil
		}
		count++
		key := labelKey(ev.Labels)
		if _, ok := last[key]; !ok {
			order = append(order, key)
		}
		cp := *ev
		last[key] = &cp
		return nil
	})
	if scanErr != nil {
		if !errors.Is(scanErr, io.ErrUnexpectedEOF) || count == 0 {
			return scanErr
		}
		fmt.Fprintln(os.Stderr, "runlog profile: warning: log ends mid-event (run killed?); reporting the complete events")
	}
	if count == 0 {
		return errors.New("no device_profile events in the log (run the producer with -profile and -events)")
	}

	fmt.Printf("%d device_profile events, %d runs\n", count, len(order))
	ok := true
	for _, key := range order {
		if !printProfile(os.Stdout, key, last[key].Data, *topK) {
			ok = false
		}
	}
	if !ok {
		return errors.New("attribution check FAILED: attributed cycles do not sum to total_cycles")
	}
	return nil
}

// kernelRow is one (phase, kernel) line of the breakdown table.
type kernelRow struct {
	phase  fpga.ProfPhase
	kernel fpga.ProfKernel
	units  [fpga.NumProfUnits]int64
	total  int64
}

// printProfile renders one run's profile and returns whether its
// attribution check passed.
func printProfile(w io.Writer, key string, data map[string]float64, topK int) bool {
	total := int64(data["total_cycles"])
	fmt.Fprintf(w, "\n%s\n", key)
	fmt.Fprintf(w, "  total attributed cycles: %d\n", total)

	// Reassemble the (phase × kernel × unit) grid from the event's data
	// keys. Phase and kernel names contain underscores, so the keys are
	// reconstructed from the fpga enums rather than parsed by splitting.
	var rows []kernelRow
	var attributed int64
	var unitCycles [fpga.NumProfUnits]int64
	for ph := fpga.ProfPhase(0); ph < fpga.NumProfPhases; ph++ {
		for k := fpga.ProfKernel(0); k < fpga.NumProfKernels; k++ {
			row := kernelRow{phase: ph, kernel: k}
			for u := fpga.ProfUnit(0); u < fpga.NumProfUnits; u++ {
				c := int64(data["cycles_"+ph.String()+"_"+k.String()+"_"+u.String()])
				row.units[u] = c
				row.total += c
				unitCycles[u] += c
			}
			if row.total != 0 {
				rows = append(rows, row)
				attributed += row.total
			}
		}
	}

	// Phase totals first — the coarse split the timing model also reports.
	fmt.Fprintf(w, "  cycles by phase:")
	for ph := fpga.ProfPhase(0); ph < fpga.NumProfPhases; ph++ {
		var pc int64
		for _, r := range rows {
			if r.phase == ph {
				pc += r.total
			}
		}
		if pc != 0 {
			fmt.Fprintf(w, " %s=%d (%s)", ph, pc, pct(pc, total))
		}
	}
	fmt.Fprintln(w)

	// The paper-style breakdown: every active kernel with its unit split.
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].total > rows[j].total })
	fmt.Fprintf(w, "  %-11s %-12s %12s %7s %12s %12s %12s %12s\n",
		"phase", "kernel", "cycles", "%", "add", "mul", "div", "invoke")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-11s %-12s %12d %7s %12d %12d %12d %12d\n",
			r.phase, r.kernel, r.total, pct(r.total, total),
			r.units[fpga.UnitAdd], r.units[fpga.UnitMul], r.units[fpga.UnitDiv], r.units[fpga.UnitInvoke])
	}

	if topK > len(rows) {
		topK = len(rows)
	}
	if topK > 0 {
		fmt.Fprintf(w, "  hottest kernels:")
		for i := 0; i < topK; i++ {
			fmt.Fprintf(w, " %d. %s/%s %s", i+1, rows[i].phase, rows[i].kernel, pct(rows[i].total, total))
		}
		fmt.Fprintln(w)
	}

	// Unit occupancy and the roofline position. Ops come from the event's
	// ops_<unit> keys; cycles from the reassembled grid above.
	var arithOps int64
	fmt.Fprintf(w, "  unit occupancy:")
	for u := fpga.ProfUnit(0); u < fpga.NumProfUnits; u++ {
		ops := int64(data["ops_"+u.String()])
		if u != fpga.UnitInvoke {
			arithOps += ops
		}
		if unitCycles[u] == 0 && ops == 0 {
			continue
		}
		fmt.Fprintf(w, " %s=%s (%d ops)", u, pct(unitCycles[u], total), ops)
	}
	fmt.Fprintln(w)
	if total > 0 {
		fmt.Fprintf(w, "  roofline: %.3f arith ops/cycle (peak 1.0 per sequential unit)\n",
			float64(arithOps)/float64(total))
	}

	// BRAM traffic per bank port.
	fmt.Fprintf(w, "  %-8s %14s %14s\n", "bank", "reads", "writes")
	for b := fpga.Bank(0); b < fpga.NumBanks; b++ {
		r := int64(data["bram_"+b.String()+"_"+fpga.BankRead.String()])
		wr := int64(data["bram_"+b.String()+"_"+fpga.BankWrite.String()])
		if r == 0 && wr == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-8s %14d %14d\n", b, r, wr)
	}

	if attributed == total {
		fmt.Fprintf(w, "  attribution check: OK (%d cycles fully attributed)\n", total)
		return true
	}
	fmt.Fprintf(w, "  attribution check: FAILED (attributed %d != total %d, delta %d)\n",
		attributed, total, total-attributed)
	return false
}

// pct formats part/total as a percentage; "-" for an empty profile.
func pct(part, total int64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
