// Command runlog summarizes (or, with -f, live-tails) the JSONL run-event
// streams written by the -events flag of cmd/train, cmd/timetocomplete and
// cmd/ablation. It decodes the stream incrementally with obs.ScanEvents —
// multi-million-step logs are never held in memory — and re-renders it
// through the repo's existing report formats: per-run episode statistics
// via stats.Summarize (plus histogram-estimated p50/p95/p99), and measured
// wall-clock phase breakdowns via trace.FormatBreakdownTable — the same
// table Figure 5 uses for modelled device time, here fed with real host
// seconds.
//
// The export subcommand converts a JSONL event log into a Chrome
// trace-event / Perfetto-compatible JSON timeline offline, pairing each
// phase's measured host wall time with its modelled device time (the same
// format the training tools' -trace flag writes live).
//
// The learn subcommand renders an offline learning-dynamics and
// numeric-health report: |TD-error| and target statistics, σmax(β) drift
// across θ2 syncs, any numeric_alert events a live -watchdog recorded,
// and an offline re-evaluation of the watchdog thresholds for logs
// recorded without one (see README.md §Numeric health).
//
// The profile subcommand renders the device-level cycle profile a
// -profile run recorded (device_profile events): the paper-style cycle
// breakdown per kernel and datapath unit, the hottest kernels, unit
// occupancy with the ops/cycle roofline, and per-bank BRAM traffic. It
// re-verifies that the attributed cycles sum exactly to the device's
// cycle counter and exits non-zero on a mismatch (see README.md §Device
// profiling).
//
// The ledger subcommand inspects the tamper-evident run ledger cmd/grid
// writes: "ledger verify" recomputes the whole hash chain, Merkle batch
// roots and artifact digests, exiting non-zero and naming the first
// broken record after any mutation of a past record or results file
// (-head additionally pins the chain head against suffix rewrites);
// "ledger summarize" prints each cell's latest verdict (see
// results/README.md §Run ledger).
//
// The access and slo subcommands consume the serving path's structured
// access log (cmd/serve -access -events …): access summarizes requests
// per route with the queue/eval latency split, and slo replays the log
// through the burn-rate engine on the log's own clock (see README.md
// §Serving SLOs & request tracing).
//
// Usage:
//
//	go run ./cmd/train -events run.jsonl ... && go run ./cmd/runlog run.jsonl
//	go run ./cmd/runlog < run.jsonl
//	go run ./cmd/runlog -f run.jsonl                 # follow a run in progress
//	go run ./cmd/runlog export -o run-trace.json run.jsonl
//	go run ./cmd/runlog learn run.jsonl              # TD/σmax(β)/alert report
//	go run ./cmd/runlog profile -top 5 run.jsonl     # device cycle profile
//	go run ./cmd/runlog access serve.jsonl           # access-log summary
//	go run ./cmd/runlog slo -p99 1 serve.jsonl       # offline burn-rate replay
//	go run ./cmd/runlog ledger verify                # prove the run ledger intact
//	go run ./cmd/runlog ledger summarize             # per-cell verdict table
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/export"
	"oselmrl/internal/stats"
	"oselmrl/internal/timing"
	"oselmrl/internal/trace"
)

// stepBuckets are the histogram bounds for per-episode step counts:
// CartPole episodes run 1-200 steps, the other environments up to a few
// thousand, so a coarse log-ish scale covers every built-in task.
var stepBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 500, 1000}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "export" {
		if err := runExport(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog export:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "learn" {
		if err := runLearn(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog learn:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "access" {
		if err := runAccess(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog access:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "profile" {
		if err := runProfile(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog profile:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "slo" {
		if err := runSLO(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog slo:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "ledger" {
		if err := runLedger(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "runlog ledger:", err)
			os.Exit(1)
		}
		return
	}

	follow := flag.Bool("f", false, "follow mode: tail the log, printing events as they arrive")
	flag.Parse()

	path := flag.Arg(0)
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "runlog: at most one input file")
		os.Exit(2)
	}

	if *follow {
		if err := tail(path); err != nil {
			fmt.Fprintln(os.Stderr, "runlog:", err)
			os.Exit(1)
		}
		return
	}

	in, closeIn, err := openInput(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runlog:", err)
		os.Exit(1)
	}
	defer closeIn()

	// The tolerant scanner absorbs a final line cut mid-write (run killed);
	// corruption anywhere earlier in the log is still a hard error.
	acc := newSummary()
	truncated, err := obs.ScanEventsPartial(in, acc.add)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runlog:", err)
		os.Exit(1)
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "runlog: warning: log ends mid-event (run killed?); summarizing the complete events")
	}
	acc.print(os.Stdout)
}

// openInput resolves path ("" or "-" meaning stdin) to a reader and a
// close function.
func openInput(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// runExport implements "runlog export [-o out.json] [run.jsonl]": it
// streams the event log through export.EventConverter and writes the
// reconstructed span timeline in Chrome trace-event format.
func runExport(args []string) error {
	fs := flag.NewFlagSet("runlog export", flag.ContinueOnError)
	outPath := fs.String("o", "", "output trace file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one input file")
	}

	in, closeIn, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	conv := export.NewEventConverter()
	truncated, err := obs.ScanEventsPartial(in, conv.Add)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "runlog export: warning: log ends mid-event (run killed?); exporting the complete events")
	}
	spans := conv.Spans()
	if len(spans) == 0 {
		return errors.New("no convertible events in the log")
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := export.WriteTrace(out, spans, export.TraceMeta{Tool: "runlog export"}); err != nil {
		return err
	}
	if *outPath != "" {
		fmt.Fprintf(os.Stderr, "runlog export: %d spans written to %s\n", len(spans), *outPath)
	}
	return nil
}

// labelKey renders a label set as a stable one-line identifier so events
// from the same (trial, design, ...) combination group together even in a
// merged multi-trial stream.
func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return "(run)"
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + labels[k]
	}
	return strings.Join(parts, " ")
}

// runGroup accumulates one run's events (one label set).
type runGroup struct {
	key      string
	labels   map[string]string
	steps    []float64
	scores   []float64
	stepHist *obs.Histogram
	end      *obs.Event
}

// summary is the streaming accumulator behind the default (summarize)
// mode: obs.ScanEvents feeds it one decoded event at a time, so the log
// itself is never resident in memory — only the per-run aggregates.
type summary struct {
	total  int
	byType map[string]int
	groups map[string]*runGroup
	order  []string
}

func newSummary() *summary {
	return &summary{byType: map[string]int{}, groups: map[string]*runGroup{}}
}

// add consumes one event; its signature matches obs.ScanEvents. The event
// pointer is only valid for the duration of the call, so everything kept
// (labels, run_end payload) is copied or retained by value.
func (s *summary) add(ev *obs.Event) error {
	s.total++
	s.byType[ev.Type]++
	key := labelKey(ev.Labels)
	g := s.groups[key]
	if g == nil {
		g = &runGroup{key: key, labels: ev.Labels, stepHist: obs.NewHistogram(stepBuckets)}
		s.groups[key] = g
		s.order = append(s.order, key)
	}
	switch ev.Type {
	case obs.EventEpisodeEnd:
		g.steps = append(g.steps, ev.Data["steps"])
		g.scores = append(g.scores, ev.Data["score"])
		g.stepHist.Observe(ev.Data["steps"])
	case obs.EventRunEnd:
		end := *ev
		g.end = &end
	}
	return nil
}

func (s *summary) print(w io.Writer) {
	fmt.Fprintf(w, "%d events", s.total)
	types := make([]string, 0, len(s.byType))
	for t := range s.byType {
		types = append(types, t)
	}
	sort.Strings(types)
	var parts []string
	for _, t := range types {
		parts = append(parts, fmt.Sprintf("%s=%d", t, s.byType[t]))
	}
	fmt.Fprintf(w, " (%s)\n\n", strings.Join(parts, ", "))

	// Per-run episode statistics and verdicts.
	fmt.Fprintln(w, "Runs:")
	var rows []trace.BreakdownRow
	for _, key := range s.order {
		g := s.groups[key]
		fmt.Fprintf(w, "  %s\n", g.key)
		if len(g.steps) > 0 {
			printSummary(w, "episode steps", stats.Summarize(g.steps))
			printSummary(w, "episode score", stats.Summarize(g.scores))
			fmt.Fprintf(w, "    %-13s p50=%-6.0f p95=%-6.0f p99=%-6.0f (histogram estimate)\n",
				"steps qtiles", g.stepHist.Quantile(0.50), g.stepHist.Quantile(0.95), g.stepHist.Quantile(0.99))
		}
		if g.end == nil {
			fmt.Fprintln(w, "    verdict       (run still in progress — no run_end event)")
			continue
		}
		d := g.end.Data
		verdict := "impossible"
		if d["solved"] == 1 {
			verdict = "solved"
		}
		fmt.Fprintf(w, "    verdict       %s after %d episodes (%d resets, %d steps, %.0f ms wall)\n",
			verdict, int(d["episodes"]), int(d["resets"]), int(d["total_steps"]), d["wall_ms"])
		rows = append(rows, breakdownRow(g))
	}

	if len(rows) > 0 {
		fmt.Fprintln(w, "\nMeasured wall-clock per phase (host seconds, trace table format):")
		fmt.Fprint(w, trace.FormatBreakdownTable(rows))
	}
}

func printSummary(w io.Writer, name string, s stats.Summary) {
	fmt.Fprintf(w, "    %-13s n=%-5d mean=%-8.1f std=%-8.1f min=%-6.0f median=%-6.0f max=%-6.0f\n",
		name, s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// breakdownRow converts a run_end event's wall_ms_<phase> payload into the
// trace.BreakdownRow the Figure 5 table renderer expects, with seconds in
// place of modelled device time.
func breakdownRow(g *runGroup) trace.BreakdownRow {
	d := g.end.Data
	design := g.labels["design"]
	if design == "" {
		design = g.key
	}
	hidden, _ := strconv.Atoi(g.labels["hidden"])
	bd := make(timing.Breakdown)
	for k, v := range d {
		if phase, ok := strings.CutPrefix(k, "wall_ms_"); ok {
			bd[timing.Phase(phase)] = v / 1e3
		}
	}
	return trace.BreakdownRow{
		Design:    design,
		Hidden:    hidden,
		Breakdown: bd,
		Solved:    d["solved"] == 1,
		Episodes:  int(d["episodes"]),
	}
}

// tail follows path, decoding events as they are appended and printing a
// one-line rendition of the progress-relevant ones (episode_end, reinit,
// init_train, run_start/run_end). It returns when the producer closes the
// stream only if reading stdin; for files it polls forever.
func tail(path string) error {
	var in io.Reader = os.Stdin
	fromFile := false
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		fromFile = true
	}
	r := bufio.NewReader(in)
	var partial []byte
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 && err == nil {
			if len(partial) > 0 {
				line = append(partial, line...)
				partial = nil
			}
			var ev obs.Event
			if jerr := json.Unmarshal(line, &ev); jerr == nil {
				printLive(os.Stdout, &ev)
			}
			continue
		}
		// Partial trailing line or EOF: stash what we have and, for
		// files, wait for the writer to append more.
		partial = append(partial, line...)
		if errors.Is(err, io.EOF) {
			if !fromFile {
				return nil
			}
			time.Sleep(250 * time.Millisecond)
			continue
		}
		if err != nil {
			return err
		}
	}
}

func printLive(w io.Writer, ev *obs.Event) {
	prefix := ""
	if key := labelKey(ev.Labels); key != "(run)" {
		prefix = "[" + key + "] "
	}
	d := ev.Data
	switch ev.Type {
	case obs.EventRunStart:
		fmt.Fprintf(w, "%srun_start max_episodes=%d\n", prefix, int(d["max_episodes"]))
	case obs.EventEpisodeEnd:
		fmt.Fprintf(w, "%sepisode %-5d steps=%-4d score=%-7.1f avg=%.1f\n",
			prefix, ev.Episode, int(d["steps"]), d["score"], d["moving_avg"])
	case obs.EventReinit:
		fmt.Fprintf(w, "%sreinit #%d after %d stale episodes\n",
			prefix, int(d["resets"]), int(d["episodes_since_reset"]))
	case obs.EventInitTrain:
		fmt.Fprintf(w, "%sinit_train size=%d step=%d\n", prefix, int(d["size"]), int(d["step"]))
	case obs.EventRunEnd:
		verdict := "impossible"
		if d["solved"] == 1 {
			verdict = "solved"
		}
		fmt.Fprintf(w, "%srun_end %s episodes=%d wall=%.0fms\n",
			prefix, verdict, int(d["episodes"]), d["wall_ms"])
	}
}
