package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"oselmrl/internal/ledger"
)

// runLedger implements "runlog ledger <verify|summarize>": offline
// inspection of the tamper-evident run ledger cmd/grid writes.
//
//	runlog ledger verify results/ledger/ledger.jsonl
//	runlog ledger verify -head <hash> -root results results/ledger/ledger.jsonl
//	runlog ledger summarize results/ledger/ledger.jsonl
//
// verify walks the whole chain — sequence numbers, prev-hash links,
// record hashes, Merkle batch roots and artifact digests — and exits
// non-zero naming the first broken record if anything was altered.
// summarize prints the chain's cells and their verdicts without touching
// artifacts.
func runLedger(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: runlog ledger <verify|summarize> [flags] [ledger.jsonl]")
	}
	sub, args := args[0], args[1:]
	switch sub {
	case "verify":
		return runLedgerVerify(args)
	case "summarize":
		return runLedgerSummarize(args)
	}
	return fmt.Errorf("unknown ledger subcommand %q (verify, summarize)", sub)
}

// defaultLedgerPath mirrors cmd/grid's -ledger default.
const defaultLedgerPath = "results/ledger/ledger.jsonl"

// ledgerRoot returns the artifact-resolution root matching how cmd/grid
// records paths: relative to the ledger directory's parent, so a moved
// results/ tree stays verifiable.
func ledgerRoot(ledgerPath string) string {
	return filepath.Dir(filepath.Dir(filepath.Clean(ledgerPath)))
}

func runLedgerVerify(args []string) error {
	fs := flag.NewFlagSet("runlog ledger verify", flag.ContinueOnError)
	root := fs.String("root", "", "artifact resolution root (default: the ledger directory's parent)")
	head := fs.String("head", "", "require the chain head to equal this pinned hash (detects wholesale suffix rewrites)")
	chainOnly := fs.Bool("chain-only", false, "verify only the hash chain, not artifact digests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one ledger file")
	}
	path := fs.Arg(0)
	if path == "" {
		path = defaultLedgerPath
	}
	if *root == "" {
		*root = ledgerRoot(path)
	}

	records, truncated, err := ledger.Read(path)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "runlog ledger: warning: torn trailing record dropped (writer killed mid-append); verifying the complete prefix")
	}
	stats, err := ledger.Verify(records, ledger.VerifyOptions{
		ArtifactRoot:  *root,
		SkipArtifacts: *chainOnly,
		ExpectHead:    *head,
	})
	if err != nil {
		return err
	}
	fmt.Printf("ledger OK: %d records (%d cells, %d batch seals), %d artifact digests verified\n",
		stats.Records, stats.Cells, stats.Batches, stats.Artifacts)
	fmt.Printf("head %s\n", stats.Head)
	return nil
}

func runLedgerSummarize(args []string) error {
	fs := flag.NewFlagSet("runlog ledger summarize", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one ledger file")
	}
	path := fs.Arg(0)
	if path == "" {
		path = defaultLedgerPath
	}
	records, truncated, err := ledger.Read(path)
	if err != nil {
		return err
	}
	if truncated {
		fmt.Fprintln(os.Stderr, "runlog ledger: warning: torn trailing record dropped (writer killed mid-append)")
	}
	if len(records) == 0 {
		fmt.Println("ledger is empty")
		return nil
	}

	// Latest record per config hash, in stable cell order — the same view
	// cmd/grid's tables are generated from.
	latest := map[string]ledger.Record{}
	batches := 0
	for _, r := range records {
		switch r.Kind {
		case ledger.KindCell:
			if r.ConfigHash != "" {
				latest[r.ConfigHash] = r
			}
		case ledger.KindBatch:
			batches++
		}
	}
	fmt.Printf("%d records, %d batch seals, %d distinct cells, head %s\n\n",
		len(records), batches, len(latest), records[len(records)-1].Hash)
	fmt.Printf("%-5s %-44s %-9s %10s %14s %-8s\n", "seq", "cell", "verdict", "solved", "mean_episodes", "git")
	for _, r := range ledger.SortedCells(records) {
		if latest[r.ConfigHash].Seq != r.Seq {
			continue // superseded by a -force re-run
		}
		solved := fmt.Sprintf("%.0f/%.0f", r.Metrics["solved_trials"], r.Metrics["trials"])
		mean := "-"
		if r.Metrics["solved_trials"] > 0 {
			mean = fmt.Sprintf("%.1f", r.Metrics["mean_episodes"])
		}
		git := r.GitSHA
		if len(git) > 8 {
			git = git[:8]
		}
		if r.GitDirty {
			git += "+"
		}
		fmt.Printf("%-5d %-44s %-9s %10s %14s %-8s\n", r.Seq, r.Cell, r.Verdict, solved, mean, git)
	}
	return nil
}
