package main

// The access and slo subcommands are the offline consumers of the
// serving path's serve_access events (cmd/serve -access -events …):
// `runlog access` summarizes the structured access log per route —
// status and outcome counts plus histogram-estimated latency quantiles
// split into queue-wait and evaluator components — and `runlog slo`
// replays the same log through the burn-rate engine of internal/obs/slo
// on the log's own clock, reproducing after the fact the /slo evaluation
// the live server would have shown.

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"oselmrl/internal/obs"
	"oselmrl/internal/obs/slo"
)

// accessLatencyBuckets match the serving-side histogram bounds (ms).
var accessLatencyBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250}

// routeStats accumulates one route's serve_access events.
type routeStats struct {
	route    string
	requests int
	byStatus map[int]int
	shed     int
	timeouts int
	total    *obs.Histogram
	queue    *obs.Histogram
	eval     *obs.Histogram
}

func newRouteStats(route string) *routeStats {
	return &routeStats{
		route:    route,
		byStatus: map[int]int{},
		total:    obs.NewHistogram(accessLatencyBuckets),
		queue:    obs.NewHistogram(accessLatencyBuckets),
		eval:     obs.NewHistogram(accessLatencyBuckets),
	}
}

// runAccess implements "runlog access [run.jsonl]".
func runAccess(args []string) error {
	fs := flag.NewFlagSet("runlog access", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one input file")
	}
	in, closeIn, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	byRoute := map[string]*routeStats{}
	var order []string
	total := 0
	err = obs.ScanEvents(in, func(ev *obs.Event) error {
		if ev.Type != "serve_access" {
			return nil
		}
		total++
		route := ev.Labels["route"]
		rs := byRoute[route]
		if rs == nil {
			rs = newRouteStats(route)
			byRoute[route] = rs
			order = append(order, route)
		}
		rs.requests++
		rs.byStatus[int(ev.Data["status"])]++
		if ev.Data["shed"] == 1 {
			rs.shed++
		}
		if ev.Data["timeout"] == 1 {
			rs.timeouts++
		}
		rs.total.Observe(ev.Data["total_ms"])
		rs.queue.Observe(ev.Data["queue_ms"])
		if ev.Data["shed"] != 1 && ev.Data["timeout"] != 1 {
			rs.eval.Observe(ev.Data["eval_ms"])
		}
		return nil
	})
	if err != nil && (!errors.Is(err, io.ErrUnexpectedEOF) || total == 0) {
		return err
	}
	if total == 0 {
		return errors.New("no serve_access events in the log (serve with -access -events)")
	}

	fmt.Printf("%d access events across %d route(s)\n", total, len(order))
	sort.Strings(order)
	for _, route := range order {
		rs := byRoute[route]
		fmt.Printf("\n%s: %d requests (%d shed, %d timed out)\n", rs.route, rs.requests, rs.shed, rs.timeouts)
		statuses := make([]int, 0, len(rs.byStatus))
		for st := range rs.byStatus {
			statuses = append(statuses, st)
		}
		sort.Ints(statuses)
		for _, st := range statuses {
			fmt.Printf("  status %d: %d\n", st, rs.byStatus[st])
		}
		for _, h := range []struct {
			name string
			hist *obs.Histogram
		}{{"total", rs.total}, {"queue", rs.queue}, {"eval", rs.eval}} {
			if h.hist.N == 0 {
				continue
			}
			fmt.Printf("  %-5s ms p50=%.4f p95=%.4f p99=%.4f (n=%d, histogram estimate)\n",
				h.name, h.hist.Quantile(0.50), h.hist.Quantile(0.95), h.hist.Quantile(0.99), h.hist.N)
		}
	}
	return nil
}

// runSLO implements "runlog slo [-p99 ms] [-availability frac] [run.jsonl]":
// it replays serve_access events through a burn-rate engine whose clock
// is the log's own wall_ms timeline, so window rotation happens exactly
// as it did (or would have) live.
func runSLO(args []string) error {
	fs := flag.NewFlagSet("runlog slo", flag.ContinueOnError)
	p99 := fs.Float64("p99", 100, "latency objective: p99 total latency in ms (0 disables)")
	avail := fs.Float64("availability", 0.999, "availability objective (0 disables)")
	jsonOut := fs.Bool("json", false, "emit the full slo.Report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 1 {
		return errors.New("at most one input file")
	}
	in, closeIn, err := openInput(fs.Arg(0))
	if err != nil {
		return err
	}
	defer closeIn()

	rep, total, err := replaySLO(in, slo.Objectives{LatencyP99MS: *p99, Availability: *avail})
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeJSONReport(os.Stdout, rep)
	}
	fmt.Printf("replayed %d requests: %d ok, %d client errors, %d shed, %d timeouts, %d slow\n",
		total, rep.OK, rep.ClientErrors, rep.Shed, rep.Timeouts, rep.SlowRequests)
	for _, d := range []struct {
		name string
		dist slo.Dist
	}{{"total", rep.TotalMS}, {"queue", rep.QueueMS}, {"eval", rep.EvalMS}} {
		fmt.Printf("%-5s ms p50=%.4f p95=%.4f p99=%.4f max=%.4f\n",
			d.name, d.dist.P50MS, d.dist.P95MS, d.dist.P99MS, d.dist.MaxMS)
	}
	printReplayBurn := func(name string, w5, w1h, all *slo.Burn) {
		if all == nil {
			return
		}
		line := fmt.Sprintf("%-12s overall burn %.3f (bad %d/%d)", name, all.Rate, all.Bad, all.Requests)
		if w5 != nil && w1h != nil {
			line += fmt.Sprintf(", final windows 5m=%.3f 1h=%.3f", w5.Rate, w1h.Rate)
		}
		fmt.Println(line)
	}
	printReplayBurn("latency", rep.Window5m.Latency, rep.Window1h.Latency, rep.Overall.Latency)
	printReplayBurn("availability", rep.Window5m.Availability, rep.Window1h.Availability, rep.Overall.Availability)
	if br := slo.GateBreaches(rep); len(br) > 0 {
		fmt.Printf("verdict: BREACHED (%v)\n", br)
	} else {
		fmt.Println("verdict: within budget")
	}
	return nil
}

// replaySLO streams a JSONL event log into a fresh burn-rate engine,
// driving the engine's clock from the events' wall_ms stamps (relative
// to a fixed epoch) so the 5m/1h windows rotate on replay exactly as
// they did live. Returns the final evaluation and the number of
// serve_access events replayed.
func replaySLO(in io.Reader, obj slo.Objectives) (slo.Report, int, error) {
	eng := slo.NewEngine(obj)
	epoch := time.Unix(0, 0)
	now := epoch
	eng.SetClock(func() time.Time { return now })

	total := 0
	err := obs.ScanEvents(in, func(ev *obs.Event) error {
		if ev.Type != "serve_access" {
			return nil
		}
		total++
		now = epoch.Add(time.Duration(ev.WallMS * float64(time.Millisecond)))
		outcome := slo.OK
		switch {
		case ev.Data["shed"] == 1:
			outcome = slo.Shed
		case ev.Data["timeout"] == 1:
			outcome = slo.Timeout
		case ev.Data["status"] >= 400 && ev.Data["status"] < 500:
			outcome = slo.ClientError
		}
		eng.Record(outcome, ev.Data["queue_ms"], ev.Data["eval_ms"], ev.Data["total_ms"])
		return nil
	})
	if err != nil && (!errors.Is(err, io.ErrUnexpectedEOF) || total == 0) {
		return slo.Report{}, total, err
	}
	if total == 0 {
		return slo.Report{}, 0, errors.New("no serve_access events in the log (serve with -access -events)")
	}
	return eng.Report(), total, nil
}

func writeJSONReport(w io.Writer, rep slo.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
