package main

import (
	"strings"
	"testing"

	"oselmrl/internal/obs"
)

func feedLearn(t *testing.T, s *learnSummary, evs []obs.Event) {
	t.Helper()
	for i := range evs {
		if err := s.add(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLearnSummaryHealthyRun covers the report over a clean log with a
// live watchdog that never tripped: statistics render, no alerts, and a
// healthy verdict.
func TestLearnSummaryHealthyRun(t *testing.T) {
	labels := map[string]string{"design": "OS-ELM", "trial": "0"}
	s := newLearnSummary(obs.DefaultWatchdogConfig())
	feedLearn(t, s, []obs.Event{
		{Type: obs.EventSeqUpdate, Labels: labels, Data: map[string]float64{"td_error": 0.5, "target": 1, "clipped": 1}},
		{Type: obs.EventSeqUpdate, Labels: labels, Data: map[string]float64{"td_error": 0.25, "target": 0.7, "clipped": 0}},
		{Type: obs.EventTheta2Sync, Labels: labels, Data: map[string]float64{"beta_sigma_max": 1.5, "beta_norm": 3}},
		{Type: obs.EventTheta2Sync, Labels: labels, Data: map[string]float64{"beta_sigma_max": 2.0, "beta_norm": 4}},
		{Type: obs.EventRunEnd, Labels: labels, Data: map[string]float64{"solved": 1, "diverged": 0, "numeric_alerts": 0}},
	})

	var b strings.Builder
	s.print(&b)
	out := b.String()
	for _, want := range []string{
		"design=OS-ELM trial=0",
		"|TD error|    n=2",
		"clipped=1 (50.0%)",
		"sigma(B)      syncs=2",
		"last=2.0000",
		"healthy (zero numeric alerts)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "ALERT") {
		t.Errorf("healthy run reported an alert:\n%s", out)
	}
}

// TestLearnSummaryRecordedAlerts checks that numeric_alert events group
// with their run despite the extra rule/metric labels, and that the
// run_end diverged flag wins the verdict.
func TestLearnSummaryRecordedAlerts(t *testing.T) {
	labels := map[string]string{"design": "OS-ELM"}
	alertLabels := map[string]string{"design": "OS-ELM", "rule": obs.RuleSigmaRunaway, "metric": obs.GaugeBetaSigmaMax}
	s := newLearnSummary(obs.DefaultWatchdogConfig())
	feedLearn(t, s, []obs.Event{
		{Type: obs.EventTheta2Sync, Labels: labels, Data: map[string]float64{"beta_sigma_max": 500}},
		{Type: obs.EventNumericAlert, Labels: alertLabels, Data: map[string]float64{"value": 500, "threshold": 100}},
		{Type: obs.EventRunEnd, Labels: labels, Data: map[string]float64{"solved": 0, "diverged": 1, "numeric_alerts": 1}},
	})

	if len(s.order) != 1 {
		t.Fatalf("alert event split into its own group: %v", s.order)
	}
	var b strings.Builder
	s.print(&b)
	out := b.String()
	if !strings.Contains(out, "ALERT         "+obs.RuleSigmaRunaway) ||
		!strings.Contains(out, "recorded by live watchdog") {
		t.Errorf("recorded alert missing:\n%s", out)
	}
	if !strings.Contains(out, "DIVERGED (1 numeric alerts)") {
		t.Errorf("diverged verdict missing:\n%s", out)
	}
	// The offline re-evaluation must not double-report when the live
	// watchdog already recorded the trip.
	if strings.Contains(out, "offline re-evaluation") {
		t.Errorf("offline alert double-reported:\n%s", out)
	}
}

// TestLearnSummaryOfflineScreen: a log recorded without -watchdog (no
// numeric_alert events) is re-screened offline and flagged as suspect.
func TestLearnSummaryOfflineScreen(t *testing.T) {
	labels := map[string]string{"design": "OS-ELM"}
	s := newLearnSummary(obs.DefaultWatchdogConfig())
	feedLearn(t, s, []obs.Event{
		// Signed TD error: a large negative blowup must still trip the
		// magnitude rule.
		{Type: obs.EventSeqUpdate, Labels: labels, Data: map[string]float64{"td_error": -1e6, "target": 1, "clipped": 1}},
		{Type: obs.EventTheta2Sync, Labels: labels, Data: map[string]float64{"beta_sigma_max": 500}},
		{Type: obs.EventRunEnd, Labels: labels, Data: map[string]float64{"solved": 0}},
	})

	var b strings.Builder
	s.print(&b)
	out := b.String()
	for _, want := range []string{
		obs.RuleTDBlowup,
		obs.RuleSigmaRunaway,
		"offline re-evaluation",
		"suspect — 2 offline alerts",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("offline screen missing %q:\n%s", want, out)
		}
	}
}
