package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oselmrl/internal/ledger"
)

// buildLedger writes a small honest ledger with one digest-protected
// artifact under root/ledger/, returning the ledger file path.
func buildLedger(t *testing.T, root string) string {
	t.Helper()
	artPath := filepath.Join(root, "grid", "cell.json")
	if err := os.MkdirAll(filepath.Dir(artPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artPath, []byte(`{"solved":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	digest, err := ledger.HashFile(artPath)
	if err != nil {
		t.Fatal(err)
	}

	l, err := ledger.Open(filepath.Join(root, "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		hash, err := ledger.HashConfig(i)
		if err != nil {
			t.Fatal(err)
		}
		rec := ledger.Record{
			Kind: ledger.KindCell, Cell: "cartpole/ELM/h8", ConfigHash: hash,
			Verdict: "solved", Metrics: map[string]float64{"trials": 1, "solved_trials": 1},
		}
		if i == 0 {
			rec.Artifacts = []ledger.Artifact{{Path: "grid/cell.json", SHA256: digest}}
		}
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(root, "ledger", ledger.FileName)
}

func TestRunLedgerVerifyHonest(t *testing.T) {
	root := t.TempDir()
	path := buildLedger(t, root)
	if err := runLedgerVerify([]string{path}); err != nil {
		t.Fatalf("verify on an honest ledger: %v", err)
	}
	if err := runLedgerSummarize([]string{path}); err != nil {
		t.Fatalf("summarize: %v", err)
	}
}

func TestRunLedgerVerifyNamesTamperedRecord(t *testing.T) {
	root := t.TempDir()
	path := buildLedger(t, root)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"verdict":"solved"`, `"verdict":"Solved"`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	err = runLedgerVerify([]string{path})
	var brk *ledger.BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("verify on a tampered ledger = %v, want a BreakError", err)
	}
	if brk.Seq != 2 {
		t.Fatalf("break named record %d, want 2: %v", brk.Seq, err)
	}
}

func TestRunLedgerVerifyNamesTamperedArtifact(t *testing.T) {
	root := t.TempDir()
	path := buildLedger(t, root)
	if err := os.WriteFile(filepath.Join(root, "grid", "cell.json"), []byte(`{"solved":false}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runLedgerVerify([]string{path})
	var brk *ledger.BreakError
	if !errors.As(err, &brk) {
		t.Fatalf("verify with a tampered artifact = %v, want a BreakError", err)
	}
	if brk.Artifact != "grid/cell.json" || brk.Seq != 1 {
		t.Fatalf("break = seq %d artifact %q, want seq 1 grid/cell.json", brk.Seq, brk.Artifact)
	}
	// -chain-only ignores artifacts: the chain itself is intact.
	if err := runLedgerVerify([]string{"-chain-only", path}); err != nil {
		t.Fatalf("-chain-only verify: %v", err)
	}
}

func TestRunLedgerVerifyPinnedHead(t *testing.T) {
	root := t.TempDir()
	path := buildLedger(t, root)
	records, _, err := ledger.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	head := records[len(records)-1].Hash
	if err := runLedgerVerify([]string{"-head", head, path}); err != nil {
		t.Fatalf("verify with the correct pinned head: %v", err)
	}
	if err := runLedgerVerify([]string{"-head", ledger.Genesis, path}); err == nil {
		t.Fatal("verify accepted a wrong pinned head")
	}
}
