package main

import (
	"fmt"
	"strings"
	"testing"

	"oselmrl/internal/obs/slo"
)

// accessLine renders one serve_access JSONL line at wallMS.
func accessLine(wallMS float64, status int, queueMS, evalMS, totalMS float64, shed, timeout int) string {
	return fmt.Sprintf(`{"type":"serve_access","seq":1,"wall_ms":%g,`+
		`"data":{"status":%d,"queue_ms":%g,"eval_ms":%g,"total_ms":%g,"generation":1,"shed":%d,"timeout":%d},`+
		`"labels":{"trace":"4bf92f3577b34da6a3ce929d0e0e4736","route":"/v1/predict"}}`,
		wallMS, status, queueMS, evalMS, totalMS, shed, timeout) + "\n"
}

func TestReplaySLO(t *testing.T) {
	var log strings.Builder
	// 100 fast OK requests in the first minute, then 10 shed.
	for i := 0; i < 100; i++ {
		log.WriteString(accessLine(float64(i)*10, 200, 0.01, 0.02, 0.05, 0, 0))
	}
	for i := 0; i < 10; i++ {
		log.WriteString(accessLine(1000+float64(i)*10, 429, 0.5, 0, 0.5, 1, 0))
	}
	log.WriteString(accessLine(1200, 400, 0.01, 0.02, 0.05, 0, 0)) // client error
	log.WriteString(`{"type":"episode_end","seq":9,"wall_ms":1300,"data":{"steps":10}}` + "\n")

	rep, total, err := replaySLO(strings.NewReader(log.String()),
		slo.Objectives{LatencyP99MS: 100, Availability: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if total != 111 {
		t.Fatalf("replayed %d events, want 111 (non-access events skipped)", total)
	}
	if rep.OK != 100 || rep.Shed != 10 || rep.ClientErrors != 1 {
		t.Fatalf("outcomes %+v", rep)
	}
	// 10 shed out of 110 eligible against a 0.1% budget: burn way past 1.
	if b := rep.Overall.Availability; b == nil || b.Rate < 1 {
		t.Fatalf("availability burn %+v", b)
	}
	if br := slo.GateBreaches(rep); len(br) != 1 || br[0] != "availability" {
		t.Fatalf("breaches %v", br)
	}
	if rep.EvalMS.N != 101 {
		t.Errorf("eval distribution must exclude shed requests: %+v", rep.EvalMS)
	}
}

// Replay drives window rotation from the log's own clock: requests an
// hour apart (by wall_ms) land in different windows.
func TestReplaySLOVirtualClock(t *testing.T) {
	var log strings.Builder
	for i := 0; i < 30; i++ {
		log.WriteString(accessLine(float64(i), 200, 0.1, 0.1, 500, 0, 0)) // all slow
	}
	// One fast request 2 hours later: the windows have rotated past the
	// slow burst by then.
	log.WriteString(accessLine(2*3600*1000, 200, 0.01, 0.02, 0.05, 0, 0))

	rep, _, err := replaySLO(strings.NewReader(log.String()), slo.Objectives{LatencyP99MS: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlowRequests != 30 {
		t.Fatalf("slow = %d", rep.SlowRequests)
	}
	if b := rep.Window5m.Latency; b == nil || b.Requests != 1 || b.Rate != 0 {
		t.Errorf("final 5m window must only hold the late request: %+v", b)
	}
	if b := rep.Overall.Latency; b == nil || b.Rate < 1 {
		t.Errorf("overall burn must remember the burst: %+v", b)
	}
}

func TestReplaySLOEmptyLog(t *testing.T) {
	if _, _, err := replaySLO(strings.NewReader(""), slo.Objectives{}); err == nil {
		t.Fatal("empty log must error")
	}
	noAccess := `{"type":"episode_end","seq":1,"wall_ms":5,"data":{"steps":3}}` + "\n"
	if _, _, err := replaySLO(strings.NewReader(noAccess), slo.Objectives{}); err == nil {
		t.Fatal("log without serve_access events must error")
	}
}
