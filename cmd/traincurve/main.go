// Command traincurve regenerates paper Figure 4: training curves of the
// six software designs (ELM, OS-ELM, OS-ELM-L2, OS-ELM-Lipschitz,
// OS-ELM-L2-Lipschitz, DQN) on CartPole-v0, one CSV per design per hidden
// width with the per-episode steps and the 100-episode moving average. It
// is the regeneration target for experiment E3 in DESIGN.md.
//
// Usage:
//
//	go run ./cmd/traincurve -hidden 32 -episodes 2000 -out results/curves
//	go run ./cmd/traincurve -hidden 32,64,128,192 -designs OS-ELM-L2,DQN
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oselmrl/internal/cli"
	"oselmrl/internal/env"
	"oselmrl/internal/harness"
	"oselmrl/internal/trace"
)

func main() {
	hiddenFlag := flag.String("hidden", "32", "comma-separated hidden widths")
	designsFlag := flag.String("designs", "", "comma-separated designs (default: the six of Figure 4)")
	episodes := flag.Int("episodes", 2000, "episode budget per run")
	seed := flag.Uint64("seed", 1, "base seed")
	outDir := flag.String("out", "", "directory for CSV output (empty = stdout summary only)")
	flag.Parse()

	sizes, err := cli.ParseIntList(*hiddenFlag)
	if err != nil {
		fail(err)
	}
	designs := harness.TrainingCurveDesigns
	if *designsFlag != "" {
		designs = nil
		for _, name := range strings.Split(*designsFlag, ",") {
			d, err := harness.ParseDesign(strings.TrimSpace(name))
			if err != nil {
				fail(err)
			}
			designs = append(designs, d)
		}
	}

	for _, hidden := range sizes {
		fmt.Printf("== Figure 4, %d hidden units ==\n", hidden)
		for _, d := range designs {
			agent, err := harness.NewAgent(d, 4, 2, hidden, *seed)
			if err != nil {
				fmt.Printf("%-22s skipped: %v\n", d, err)
				continue
			}
			e := env.NewShaped(env.NewCartPoleV0(*seed+100), env.RewardSurvival)
			cfg := harness.RunConfigFor(d, harness.Defaults())
			cfg.MaxEpisodes = *episodes
			res := harness.Run(agent, e, cfg)

			best := 0.0
			for _, p := range res.Curve {
				if p.MovingAvg > best {
					best = p.MovingAvg
				}
			}
			status := "running"
			if res.Solved {
				status = fmt.Sprintf("SOLVED at episode %d", res.Episodes)
			}
			fmt.Printf("%-22s best 100-ep avg %6.1f  resets %d  %s\n",
				d, best, res.Resets, status)

			if *outDir != "" {
				if err := writeCurve(*outDir, string(d), hidden, res); err != nil {
					fail(err)
				}
			}
		}
		fmt.Println()
	}
	if *outDir != "" {
		fmt.Println("CSV written to", *outDir)
	}
}

func writeCurve(dir, design string, hidden int, res *harness.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("curve_%s_%d.csv", strings.ReplaceAll(design, " ", "_"), hidden)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteCurveCSV(f, res.Curve)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "traincurve:", err)
	os.Exit(2)
}
